"""Fault-injection suite for the resilient experiment runtime.

Forces the failures a long sweep must survive — engine crashes,
interrupts mid-run, torn and corrupted journals, expired deadlines —
and asserts the runtime degrades, resumes, or refuses exactly as
documented.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    SimulationError,
)
from repro.experiments import ExperimentOptions, run_experiment
from repro.predictors.factory import make_predictor_spec
from repro.runtime import (
    CheckpointJournal,
    CooperativeInterrupt,
    Deadline,
    DeadlineExceeded,
    InjectedFault,
    atomic_write_text,
    clear_faults,
    install_faults,
    maybe_inject,
    parse_fault_spec,
    result_invariant_violation,
    retry_with_backoff,
    sweep_key,
)
from repro.sim.engine import simulate
from repro.sim.reference import simulate_reference
from repro.sim.results import TierPoint
from repro.sim.sweep import sweep_tiers
from repro.workloads import make_workload


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()


@pytest.fixture(scope="module")
def trace():
    return make_workload("compress", length=2_000, seed=3)


def surface_cells(surface):
    return [
        (n, p.col_bits, p.row_bits, p.misprediction_rate,
         p.first_level_miss_rate)
        for n in surface.sizes
        for p in surface.tier(n)
    ]


class TestFaultSpecs:
    def test_parse_all_clause_shapes(self):
        plan = parse_fault_spec(
            "a:raise, b:interrupt@2 ,c:corrupt%3,,d:raise"
        )
        assert {site for site in plan.clauses} == {"a", "b", "c", "d"}
        assert plan.for_site("b")[0].nth == 2
        assert plan.for_site("c")[0].every == 3

    @pytest.mark.parametrize(
        "spec", ["noaction", "x:explode", "x:raise@zero", "x:raise@0"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)

    def test_env_gating(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "site.x:raise@2")
        assert maybe_inject("site.x") is False  # first pass survives
        with pytest.raises(InjectedFault):
            maybe_inject("site.x")
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        clear_faults()
        assert maybe_inject("site.x") is False

    def test_nth_clause_fires_once(self):
        install_faults("s:raise@1")
        with pytest.raises(InjectedFault):
            maybe_inject("s")
        assert maybe_inject("s") is False


class TestEngineFallback:
    def test_auto_degrades_to_reference_identically(self, trace, caplog):
        spec = make_predictor_spec("gshare", rows=64)
        expected = simulate_reference(spec, trace)
        install_faults("engine.vectorized:raise")
        result = simulate(spec, trace, engine="auto")
        assert result.engine == expected.engine == "reference"
        assert np.array_equal(result.predictions, expected.predictions)
        assert np.array_equal(result.taken, expected.taken)
        assert result.first_level_miss_rate == expected.first_level_miss_rate
        assert result.misprediction_rate == expected.misprediction_rate
        assert any(
            "degraded" in record.message for record in caplog.records
        )

    def test_explicit_vectorized_propagates(self, trace):
        spec = make_predictor_spec("gshare", rows=64)
        install_faults("engine.vectorized:raise")
        with pytest.raises(SimulationError) as excinfo:
            simulate(spec, trace, engine="vectorized")
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_reference_engine_ignores_engine_faults(self, trace):
        spec = make_predictor_spec("gshare", rows=64)
        install_faults("engine.vectorized:raise")
        result = simulate(spec, trace, engine="reference")
        assert result.engine == "reference"

    def test_invariant_violation_degrades(self, trace, monkeypatch, caplog):
        spec = make_predictor_spec("gshare", rows=64)
        good = simulate_reference(spec, trace)

        def broken(spec, trace):
            bad = simulate_reference(spec, trace)
            bad.predictions = bad.predictions[:-1]
            bad.taken = bad.taken[:-1]
            return bad

        import repro.runtime.guard as guard

        monkeypatch.setattr(guard, "simulate_vectorized", broken)
        result = simulate(spec, trace, engine="auto")
        assert len(result.predictions) == len(trace)
        assert np.array_equal(result.predictions, good.predictions)
        with pytest.raises(SimulationError):
            simulate(spec, trace, engine="vectorized")

    def test_invariant_checks(self, trace):
        spec = make_predictor_spec("gshare", rows=64)
        result = simulate_reference(spec, trace)
        assert result_invariant_violation(result, trace) is None
        result.predictions = result.predictions[:-1]
        assert "shape" in result_invariant_violation(result, trace)

    def test_paranoid_agreement_passes(self, trace):
        spec = make_predictor_spec("gshare", rows=64)
        fast = simulate(spec, trace, engine="auto", paranoid=True)
        assert fast.engine == "vectorized"

    def test_paranoid_disagreement_raises_when_explicit(
        self, trace, monkeypatch
    ):
        import repro.runtime.guard as guard

        spec = make_predictor_spec("gshare", rows=64)
        real = guard.simulate_vectorized

        def flipped(spec, inner_trace):
            result = real(spec, inner_trace)
            if "[0:" in inner_trace.name:  # only the prefix re-run
                result.predictions = ~result.predictions
            return result

        monkeypatch.setattr(guard, "simulate_vectorized", flipped)
        with pytest.raises(SimulationError, match="disagree"):
            simulate(spec, trace, engine="vectorized", paranoid=True)
        # auto degrades to the reference engine instead of dying.
        result = simulate(spec, trace, engine="auto", paranoid=True)
        assert result.engine == "reference"


class TestCheckpointJournal:
    def _journal(self, tmp_path, key="k" * 16):
        return CheckpointJournal.open(
            str(tmp_path / "j.journal"), key, resume=True
        )

    def test_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        journal.append(4, TierPoint(3, 1, 0.125, first_level_miss_rate=0.5))
        reopened = self._journal(tmp_path)
        assert reopened.points == journal.points
        assert reopened.completed() == {(4, 0), (4, 1)}

    def test_key_mismatch_starts_clean(self, tmp_path):
        journal = self._journal(tmp_path, key="a" * 16)
        journal.append(4, TierPoint(4, 0, 0.25))
        other = self._journal(tmp_path, key="b" * 16)
        assert len(other) == 0

    def test_resume_false_ignores_existing(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        fresh = CheckpointJournal.open(journal.path, journal.key, resume=False)
        assert len(fresh) == 0

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        journal.append(4, TierPoint(3, 1, 0.125))
        with open(journal.path, "a", encoding="ascii") as handle:
            handle.write('{"kind": "point", "n": 4, "col_')  # torn write
        reopened = self._journal(tmp_path)
        assert len(reopened) == 2

    def test_corrupt_middle_line_rejected(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        journal.append(4, TierPoint(3, 1, 0.125))
        lines = open(journal.path, encoding="ascii").read().splitlines()
        lines[1] = lines[1].replace("0.25", "0.99")  # bit-rot: crc now wrong
        with open(journal.path, "w", encoding="ascii") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            self._journal(tmp_path)

    def test_corrupt_header_rejected(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        data = open(journal.path, encoding="ascii").read()
        with open(journal.path, "w", encoding="ascii") as handle:
            handle.write("garbage\n" + data)
        with pytest.raises(CheckpointError):
            self._journal(tmp_path)

    def test_injected_flush_corruption_loses_only_tail(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(4, TierPoint(4, 0, 0.25))
        install_faults("checkpoint.flush:raise@1")
        with pytest.raises(InjectedFault):
            journal.append(4, TierPoint(3, 1, 0.125))
        clear_faults()
        # The failed append never hit disk; the first point survived.
        reopened = self._journal(tmp_path)
        assert reopened.completed() == {(4, 0)}

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "f.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert open(path).read() == "second"
        assert not os.path.exists(path + ".tmp")

    def test_sweep_key_ignores_engine_but_not_options(self, trace):
        base = sweep_key("gas", trace.fingerprint(), [4, 5])
        assert base == sweep_key(
            "gas", trace.fingerprint(), [5, 4], engine="reference"
        )
        assert base != sweep_key("gas", trace.fingerprint(), [4, 6])
        assert base != sweep_key("gshare", trace.fingerprint(), [4, 5])
        assert base != sweep_key("gas", "0" * 16, [4, 5])


class TestResumableSweeps:
    def test_kill_then_resume_bit_identical(self, trace, tmp_path):
        uninterrupted = sweep_tiers("gas", trace, size_bits=[4, 5])
        install_faults("sweep.point:interrupt@4")
        with pytest.raises(KeyboardInterrupt):
            sweep_tiers(
                "gas", trace, size_bits=[4, 5],
                checkpoint_dir=str(tmp_path),
            )
        clear_faults()
        resumed = sweep_tiers(
            "gas", trace, size_bits=[4, 5], checkpoint_dir=str(tmp_path)
        )
        assert surface_cells(resumed) == surface_cells(uninterrupted)

    def test_resume_skips_completed_points(self, trace, tmp_path):
        sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path)
        )
        # Any further simulation would trip this fault; resume must not
        # simulate at all.
        install_faults("sweep.point:raise")
        resumed = sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path)
        )
        assert len(surface_cells(resumed)) == 5

    def test_engine_fault_mid_sweep_degrades_not_dies(self, trace, tmp_path):
        clean = sweep_tiers("gas", trace, size_bits=[4])
        install_faults("engine.vectorized:raise%2")
        survived = sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path)
        )
        assert surface_cells(survived) == surface_cells(clean)

    def test_deadline_flushes_and_resumes(self, trace, tmp_path):
        deadline = Deadline(seconds=1e-9)
        with pytest.raises(DeadlineExceeded):
            sweep_tiers(
                "gas", trace, size_bits=[4],
                checkpoint_dir=str(tmp_path), deadline=deadline,
            )
        resumed = sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path)
        )
        assert surface_cells(resumed) == surface_cells(
            sweep_tiers("gas", trace, size_bits=[4])
        )

    def test_run_experiment_resumes_after_kill(self, trace, tmp_path):
        options = ExperimentOptions(
            length=2_000, seed=3, benchmarks=["compress"], size_bits=[4],
        )
        baseline = run_experiment("fig4", options)
        install_faults("sweep.point:interrupt@3")
        checkpointed = ExperimentOptions(
            length=2_000, seed=3, benchmarks=["compress"], size_bits=[4],
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(KeyboardInterrupt):
            run_experiment("fig4", checkpointed)
        clear_faults()
        assert list(tmp_path.glob("*.journal"))  # flushed before dying
        resumed = run_experiment("fig4", checkpointed)
        assert resumed.text == baseline.text


class TestDeadlinesAndRetries:
    def test_deadline_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_deadline_expiry(self):
        deadline = Deadline(1e-9)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="deadline"):
            deadline.check("unit test")

    def test_bad_deadline_rejected(self):
        with pytest.raises(SimulationError):
            Deadline(0)

    def test_retry_recovers_from_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("contention")
            return "ok"

        slept = []
        assert retry_with_backoff(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == [0.05, 0.1]  # exponential backoff

    def test_retry_gives_up_and_propagates(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError):
            retry_with_backoff(
                always_fails, retries=2, sleep=lambda _: None
            )

    def test_retry_ignores_non_retryable(self):
        def wrong_kind():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_with_backoff(wrong_kind, sleep=lambda _: None)

    def test_cooperative_interrupt_defers_sigint(self):
        with CooperativeInterrupt() as interrupt:
            os.kill(os.getpid(), signal.SIGINT)
            assert interrupt.pending  # deferred, not raised
            with pytest.raises(KeyboardInterrupt):
                interrupt.checkpoint()

    def test_cooperative_interrupt_restores_handler(self):
        before = signal.getsignal(signal.SIGINT)
        with CooperativeInterrupt():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before


class TestSmokeScript:
    def test_smoke_resume_script_passes(self, capsys):
        """Run the benchmarks/ smoke script in-process (tier-1 guard
        for the interrupted-then-resumed path)."""
        import importlib.util

        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "smoke_resume.py"
        )
        loader_spec = importlib.util.spec_from_file_location(
            "smoke_resume", script
        )
        module = importlib.util.module_from_spec(loader_spec)
        loader_spec.loader.exec_module(module)
        assert module.main(["--length", "1500"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestAtomicTraceSave:
    def test_save_fault_leaves_no_partial_file(self, tmp_path, trace):
        from repro.traces import load_trace, save_trace

        path = tmp_path / "t.npz"
        save_trace(trace, path)
        install_faults("trace.save:raise")
        with pytest.raises(InjectedFault):
            save_trace(trace, path)
        clear_faults()
        # The original archive is intact and loadable.
        loaded = load_trace(path)
        assert np.array_equal(loaded.pc, trace.pc)
        assert not list(tmp_path.glob("*.tmp"))


class TestFaultGrammarExtensions:
    def test_parse_arguments_and_new_actions(self):
        plan = parse_fault_spec(
            "a:delay(0.5)@2,b:stale-clock(-60),c:torn-write%3"
        )
        assert plan.for_site("a")[0].arg == 0.5
        assert plan.for_site("a")[0].nth == 2
        assert plan.for_site("b")[0].arg == -60.0
        assert plan.for_site("c")[0].action == "torn-write"

    @pytest.mark.parametrize(
        "spec", ["x:delay(0.5", "x:delay(abc)", "x:stale-clock()"]
    )
    def test_bad_arguments_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)

    def test_fire_site_returns_passive_actions(self):
        from repro.runtime.faults import clock_skew, fire_site

        install_faults("s:torn-write(3),s:stale-clock(-9)")
        fired = fire_site("s")
        assert fired == {"torn-write": 3.0, "stale-clock": -9.0}
        assert clock_skew(fired) == -9.0
        assert clock_skew({}) == 0.0

    def test_delay_sleeps_in_place(self, monkeypatch):
        from repro.runtime import faults

        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        install_faults("s:delay(0.25)")
        assert faults.fire_site("s") == {}
        assert slept == [0.25]

    def test_maybe_inject_stays_boolean(self):
        install_faults("s:torn-write")
        assert maybe_inject("s") is False  # torn-write is not corrupt
        install_faults("s:corrupt")
        assert maybe_inject("s") is True


class TestBackoffPolicy:
    def test_deterministic_schedule_and_cap(self):
        from repro.runtime.backoff import BackoffPolicy

        policy = BackoffPolicy(base_delay=0.05, factor=2.0, max_delay=0.2)
        assert [policy.delay_for(i) for i in range(5)] == [
            0.05, 0.1, 0.2, 0.2, 0.2,
        ]

    def test_jitter_bounds(self):
        import random

        from repro.runtime.backoff import BackoffPolicy

        policy = BackoffPolicy(
            base_delay=1.0, factor=1.0, max_delay=1.0, jitter=0.5
        )
        rng = random.Random(0)
        for _ in range(50):
            delay = policy.delay_for(0, rng=rng)
            assert 0.5 <= delay <= 1.0

    def test_invalid_policies_rejected(self):
        from repro.runtime.backoff import BackoffPolicy

        with pytest.raises(SimulationError):
            BackoffPolicy(base_delay=-1.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(SimulationError):
            BackoffPolicy().delay_for(-1)

    def test_sleep_invokes_callable(self):
        from repro.runtime.backoff import BackoffPolicy

        slept = []
        policy = BackoffPolicy(base_delay=0.05, factor=2.0, max_delay=2.0)
        policy.sleep(1, sleep=slept.append)
        assert slept == [0.1]


class TestTornWriteRecovery:
    def test_torn_flush_resumes_and_recomputes_only_lost_point(
        self, trace, tmp_path
    ):
        """Satellite: a torn final flush loses exactly the tail point;
        the next run quarantines the torn bytes, restores every intact
        point, and recomputes only the lost one — bit-identically."""
        from repro.obs import snapshot

        serial = sweep_tiers("gshare", trace, size_bits=[4])

        # Probe how many flushes a clean checkpointed run performs so
        # the fault can tear exactly the last one.
        probe_dir = tmp_path / "probe"
        before = snapshot()["counters"]["checkpoint.flushes"]
        sweep_tiers(
            "gshare", trace, size_bits=[4], checkpoint_dir=str(probe_dir)
        )
        flushes = snapshot()["counters"]["checkpoint.flushes"] - before

        victim_dir = tmp_path / "victim"
        install_faults(f"checkpoint.flush:torn-write@{flushes}")
        sweep_tiers(
            "gshare", trace, size_bits=[4], checkpoint_dir=str(victim_dir)
        )
        clear_faults()

        before = snapshot()["counters"]
        resumed = sweep_tiers(
            "gshare", trace, size_bits=[4], checkpoint_dir=str(victim_dir)
        )
        after = snapshot()["counters"]
        assert after["sweep.points_computed"] - before["sweep.points_computed"] == 1
        assert after["sweep.points_restored"] - before["sweep.points_restored"] == 4
        # The torn bytes were preserved to a sidecar at open.
        quarantines = [
            name
            for name in os.listdir(victim_dir)
            if name.endswith(".quarantine")
        ]
        assert len(quarantines) == 1
        assert surface_cells(resumed) == surface_cells(serial)

    def test_torn_journal_passes_doctor_after_repair(self, trace, tmp_path):
        from repro.check.doctor import scan_checkpoint_dir
        from repro.obs import snapshot

        probe_dir = tmp_path / "probe"
        before = snapshot()["counters"]["checkpoint.flushes"]
        sweep_tiers(
            "gshare", trace, size_bits=[4], checkpoint_dir=str(probe_dir)
        )
        flushes = snapshot()["counters"]["checkpoint.flushes"] - before

        victim_dir = tmp_path / "victim"
        install_faults(f"checkpoint.flush:torn-write@{flushes}")
        sweep_tiers(
            "gshare", trace, size_bits=[4], checkpoint_dir=str(victim_dir)
        )
        clear_faults()
        findings = scan_checkpoint_dir(str(victim_dir), repair=True)
        assert any(f.check == "doctor.journal-repaired" for f in findings)
        findings = scan_checkpoint_dir(str(victim_dir))
        assert all(f.severity == "info" for f in findings)
