"""Tests for the code pass (repo-invariant lint) and the check CLI."""

import json
import textwrap

from repro.check import lint_paths, lint_source
from repro.cli import EXIT_ERROR, main


def lint(source, **kwargs):
    return lint_source(
        textwrap.dedent(source), filename="fixture.py", **kwargs
    )


def checks(findings):
    return [f.check for f in findings]


class TestBareExcept:
    def test_flagged(self):
        findings = lint(
            """
            try:
                pass
            except:
                pass
            """
        )
        assert checks(findings) == ["code.bare-except"]
        assert findings[0].severity == "error"
        assert findings[0].location == "fixture.py:4"

    def test_named_handler_is_fine(self):
        assert lint("try:\n    pass\nexcept ValueError:\n    pass\n") == []


class TestMutableDefault:
    def test_literal_defaults_flagged(self):
        findings = lint("def f(a=[], b={}, *, c=set()):\n    pass\n")
        assert checks(findings) == ["code.mutable-default"] * 3

    def test_none_and_tuple_are_fine(self):
        assert lint("def f(a=None, b=(), c=0):\n    pass\n") == []


class TestHotLoop:
    SOURCE = """
        def index(trace):
            for i in range(len(trace)):
                pass
        """

    def test_flagged_in_hot_file(self):
        findings = lint(self.SOURCE, is_hot=True)
        assert checks(findings) == ["code.hot-loop"]

    def test_not_flagged_in_cold_file(self):
        assert lint(self.SOURCE) == []

    def test_iterating_the_trace_is_flagged(self):
        findings = lint(
            "def f(trace):\n    for b in trace.pc:\n        pass\n",
            is_hot=True,
        )
        assert checks(findings) == ["code.hot-loop"]

    def test_length_bounded_while_is_flagged(self):
        findings = lint(
            "def f(xs):\n    i = 0\n    while i < len(xs):\n        i += 1\n",
            is_hot=True,
        )
        assert checks(findings) == ["code.hot-loop"]

    def test_log_pass_while_is_not_flagged(self):
        # fsm_scan's doubling scan: bounded by a plain name, not len().
        assert (
            lint(
                "def f(total):\n"
                "    distance = 1\n"
                "    while distance < total:\n"
                "        distance *= 2\n",
                is_hot=True,
            )
            == []
        )

    def test_allow_marker_suppresses(self):
        findings = lint(
            "def f(trace):\n"
            "    for i in range(len(trace)):  # check: allow(hot-loop)\n"
            "        pass\n",
            is_hot=True,
        )
        assert findings == []


class TestHotLoopProvenance:
    """Hot for-loops pass on trip-count provenance, not file trivia."""

    def test_range_over_register_width_names_is_fine(self):
        assert (
            lint(
                "def f(bits, slots):\n"
                "    for age in range(1, bits + 1):\n"
                "        pass\n"
                "    for i in range(slots):\n"
                "        pass\n"
                "    for s in range(1 << counter_bits):\n"
                "        pass\n",
                is_hot=True,
            )
            == []
        )

    def test_range_over_spec_attributes_is_fine(self):
        assert (
            lint(
                "def f(spec):\n"
                "    for bit in range(spec.counter_bits):\n"
                "        pass\n",
                is_hot=True,
            )
            == []
        )

    def test_literal_tuple_iteration_is_fine(self):
        assert (
            lint(
                "def f(base, skew1, skew2):\n"
                "    for bank in (base, skew1, skew2):\n"
                "        pass\n",
                is_hot=True,
            )
            == []
        )

    def test_range_over_arbitrary_name_is_flagged(self):
        findings = lint(
            "def f(n):\n    for i in range(n):\n        pass\n",
            is_hot=True,
        )
        assert checks(findings) == ["code.hot-loop"]

    def test_iterating_an_array_is_flagged(self):
        findings = lint(
            "def f(indices):\n    for i in indices:\n        pass\n",
            is_hot=True,
        )
        assert checks(findings) == ["code.hot-loop"]

    def test_cold_files_stay_unconstrained(self):
        assert (
            lint("def f(n):\n    for i in range(n):\n        pass\n") == []
        )


class TestHotTime:
    def test_flagged_in_hot_file(self):
        findings = lint(
            "import time\n\ndef f():\n    return time.perf_counter()\n",
            is_hot=True,
        )
        assert checks(findings) == ["code.hot-time"]

    def test_fine_in_cold_file(self):
        assert (
            lint("import time\n\ndef f():\n    return time.time()\n") == []
        )


class TestMetricName:
    def test_undeclared_literal_flagged(self):
        findings = lint('counter("sweep.bogus").inc()\n')
        assert checks(findings) == ["code.metric-name"]

    def test_declared_name_is_fine(self):
        assert lint('counter("sweep.points_computed").inc()\n') == []
        assert lint('histogram("sweep.point_s").observe(1.0)\n') == []

    def test_dynamic_names_are_ignored(self):
        assert lint("counter(name).inc()\n") == []


class TestRawWrite:
    def test_write_mode_warns(self):
        findings = lint('open("out.csv", "w")\n')
        assert checks(findings) == ["code.raw-write"]
        assert findings[0].severity == "warning"

    def test_read_mode_is_fine(self):
        assert lint('open("in.csv")\n') == []
        assert lint('open("in.csv", "r")\n') == []

    def test_writer_module_is_exempt(self):
        assert lint('open("tmp", "w")\n', is_writer=True) == []

    def test_allow_marker_suppresses(self):
        assert (
            lint('open("sink", "w")  # check: allow(raw-write)\n') == []
        )


class TestVersionGate:
    def test_dis_opmap_flagged_outside_compat(self):
        findings = lint('code = dis.opmap["POP_JUMP_IF_TRUE"]\n')
        assert checks(findings) == ["code.version-gate"]
        assert findings[0].severity == "error"

    def test_sys_monitoring_flagged_outside_compat(self):
        findings = lint("events = sys.monitoring.events\n")
        assert checks(findings) == ["code.version-gate"]

    def test_compat_module_is_exempt(self):
        assert (
            lint('code = dis.opmap["NOP"]\n', is_compat=True) == []
        )
        assert lint("m = sys.monitoring\n", is_compat=True) == []

    def test_other_attributes_are_fine(self):
        assert lint("names = dis.opname\n") == []
        assert lint("v = sys.version_info\n") == []

    def test_allow_marker_suppresses(self):
        assert (
            lint(
                'x = dis.opmap["NOP"]  # check: allow(version-gate)\n'
            )
            == []
        )


class TestSetIter:
    def test_set_literal_iteration_flagged(self):
        findings = lint(
            "for x in {1, 2, 3}:\n    pass\n", is_analysis=True
        )
        assert checks(findings) == ["code.set-iter"]
        assert findings[0].severity == "error"

    def test_set_call_and_union_flagged(self):
        findings = lint(
            "for x in set(xs) | {0}:\n    pass\n", is_analysis=True
        )
        assert checks(findings) == ["code.set-iter"]

    def test_set_comprehension_flagged(self):
        findings = lint(
            "for x in {y for y in ys}:\n    pass\n", is_analysis=True
        )
        assert checks(findings) == ["code.set-iter"]

    def test_sorted_set_is_fine(self):
        assert (
            lint("for x in sorted({1, 2}):\n    pass\n", is_analysis=True)
            == []
        )

    def test_non_analysis_modules_are_exempt(self):
        assert lint("for x in {1, 2}:\n    pass\n") == []

    def test_allow_marker_suppresses(self):
        assert (
            lint(
                "for x in {1, 2}:  # check: allow(set-iter)\n    pass\n",
                is_analysis=True,
            )
            == []
        )


class TestDtypeWidth:
    def test_missing_dtype_on_state_array_is_a_warning(self):
        findings = lint(
            """
            import numpy as np
            def build(bits):
                counters = np.zeros(1 << bits)
                return counters
            """
        )
        assert checks(findings) == ["code.dtype-width"]
        assert findings[0].severity == "warning"

    def test_narrow_dtype_under_register_width_size_is_an_error(self):
        findings = lint(
            """
            import numpy as np
            def build(bits):
                table = np.zeros(1 << bits, dtype=np.int8)
                return table
            """
        )
        assert checks(findings) == ["code.dtype-width"]
        assert findings[0].severity == "error"

    def test_positional_dtype_and_pow_are_seen(self):
        findings = lint(
            """
            import numpy as np
            def build(row_bits):
                state_bank = np.full(2 ** row_bits, 1, np.uint16)
                return state_bank
            """
        )
        assert checks(findings) == ["code.dtype-width"]
        assert findings[0].severity == "error"

    def test_explicit_wide_dtype_is_fine(self):
        assert (
            lint(
                """
                import numpy as np
                def build(bits):
                    counters = np.zeros(1 << bits, dtype=np.int64)
                    return counters
                """
            )
            == []
        )

    def test_narrow_dtype_without_width_risk_is_fine(self):
        assert (
            lint(
                """
                import numpy as np
                def build(n):
                    counters = np.zeros(n, dtype=np.int8)
                    return counters
                """
            )
            == []
        )

    def test_unhinted_target_is_exempt(self):
        assert (
            lint(
                """
                import numpy as np
                def build(bits):
                    mask = np.zeros(1 << bits)
                    return mask
                """
            )
            == []
        )

    def test_allow_marker_suppresses(self):
        source = (
            "import numpy as np\n"
            "def build(bits):\n"
            "    counters = np.zeros(1 << bits, dtype=np.int8)"
            "  # check: allow(dtype-width)\n"
            "    return counters\n"
        )
        assert lint(source) == []


class TestSyntaxHandling:
    def test_unparseable_source_is_a_finding(self):
        findings = lint("def f(:\n")
        assert checks(findings) == ["code.syntax"]
        assert findings[0].severity == "error"


class TestRepoIsClean:
    def test_package_has_no_lint_errors(self):
        findings = [
            f for f in lint_paths() if f.severity in ("warning", "error")
        ]
        assert findings == [], [f.render() for f in findings]


class TestCheckCli:
    def test_check_all_on_repo_is_clean(self, capsys):
        assert main(["check", "all"]) == 0
        assert "-> OK" in capsys.readouterr().out

    def test_code_pass_default_invocation(self, capsys):
        assert main(["check", "code"]) == 0
        out = capsys.readouterr().out
        assert "code.coverage" in out

    def test_hot_path_fixture_exits_1_with_json_finding(
        self, tmp_path, capsys
    ):
        hot = tmp_path / "sim" / "vectorized.py"
        hot.parent.mkdir()
        hot.write_text(
            "def index_stream(spec, trace):\n"
            "    out = []\n"
            "    for i in range(len(trace)):\n"
            "        out.append(i)\n"
            "    return out\n"
        )
        code = main(["check", "code", "--path", str(tmp_path), "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        findings = [
            f for f in report["findings"] if f["check"] == "code.hot-loop"
        ]
        assert len(findings) == 1
        assert findings[0]["severity"] == "error"
        assert findings[0]["location"].endswith("vectorized.py:3")

    def test_unsound_spec_file_exits_1_with_json_finding(
        self, tmp_path, capsys
    ):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(
            json.dumps(
                [
                    {"scheme": "gshare", "rows": 4, "cols": 4},
                    {
                        "scheme": "pas",
                        "rows": 4,
                        "cols": 4,
                        "bht_entries": 1024,
                        "bht_assoc": 3,
                    },
                ]
            )
        )
        code = main(
            [
                "check", "configs", "--spec-file", str(spec_file),
                "--json", "--sizes", "4",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 1
        (finding,) = [
            f for f in report["findings"] if f["severity"] == "error"
        ]
        assert finding["check"] == "config.first-level"
        assert finding["scheme"] == "pas"
        assert finding["point"] == "spec[1]"

    def test_strict_escalates_warnings(self, tmp_path, capsys):
        fixture = tmp_path / "module.py"
        fixture.write_text('open("out.txt", "w")\n')
        relaxed = main(["check", "code", "--path", str(tmp_path)])
        capsys.readouterr()
        strict = main(
            ["check", "code", "--path", str(tmp_path), "--strict"]
        )
        assert (relaxed, strict) == (0, 1)
        assert "-> FAIL" in capsys.readouterr().out

    def test_unreadable_spec_file_is_internal_error(self, tmp_path, capsys):
        code = main(
            ["check", "configs", "--spec-file", str(tmp_path / "none.json")]
        )
        assert code == EXIT_ERROR

    def test_unknown_pass_rejected_by_parser(self):
        try:
            main(["check", "bogus"])
        except SystemExit as exit_info:
            assert exit_info.code == 2
        else:  # pragma: no cover - argparse always raises
            raise AssertionError("argparse accepted an unknown pass")

    def test_run_accepts_no_precheck(self, capsys):
        code = main(
            [
                "run", "fig2", "--length", "2000",
                "--benchmark", "compress", "--sizes", "4",
                "--no-precheck",
            ]
        )
        assert code == 0
