"""Tests for the per-set (SAg/SAs) history predictors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predictors import (
    SetHistoryPredictor,
    build_predictor,
    make_predictor_spec,
    taxonomy_code,
)
from repro.predictors.bht import reset_history
from repro.sim import simulate_reference, simulate_vectorized
from repro.traces import BranchTrace
from repro.workloads import make_workload


def run(predictor, sequence):
    wrong = 0
    for pc, taken, target in sequence:
        if predictor.predict(pc, target) != taken:
            wrong += 1
        predictor.update(pc, taken, target)
    return wrong


class TestSetHistoryPredictor:
    def test_scheme_names(self):
        assert SetHistoryPredictor(rows=8, cols=1).scheme == "sag"
        assert SetHistoryPredictor(rows=8, cols=4).scheme == "sas"

    def test_learns_pattern_like_pas_when_unaliased(self):
        """With one branch per set, SAs degenerates to PAs."""
        pattern = [True, True, False]
        seq = [(0x100, pattern[i % 3], 0) for i in range(300)]
        p = SetHistoryPredictor(rows=8, cols=1, set_entries=64)
        run(p, seq[:150])
        assert run(p, seq[150:]) == 0

    def test_untagged_conflicts_pollute_silently(self):
        """A patterned branch sharing its register with a random one:
        the intruder's bits displace the pattern bits the register
        would otherwise hold, so a short shared register can no longer
        resolve the pattern phase a private one nails."""
        import random

        rnd = random.Random(4)
        pattern = [True, True, False]
        seq = []
        for i in range(600):
            seq.append((0x100, pattern[i % 3], 0))  # word 0x40 -> set 0
            seq.append((0x108, rnd.random() < 0.5, 0))  # word 0x42 -> set 0
        # rows=4 -> a 2-bit register: privately it holds the last two
        # pattern outcomes (enough to identify the phase of TTF);
        # shared, one of the two bits is the intruder's noise.
        shared = SetHistoryPredictor(rows=4, cols=2, set_entries=2)
        private = SetHistoryPredictor(rows=4, cols=2, set_entries=64)
        assert run(private, seq) + 50 < run(shared, seq)

    def test_initial_history_is_reset_pattern(self):
        p = SetHistoryPredictor(rows=16, cols=1, set_entries=4)
        assert p._histories[0] == reset_history(4)

    def test_reset_restores(self):
        p = SetHistoryPredictor(rows=8, cols=1, set_entries=4)
        run(p, [(0x100, False, 0)] * 20)
        p.reset()
        assert p._histories[0] == reset_history(3)

    def test_storage_counts_histories(self):
        p = SetHistoryPredictor(rows=16, cols=2, set_entries=128)
        assert p.storage_bits == 16 * 2 * 2 + 128 * 4

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            SetHistoryPredictor(rows=12, cols=1)
        with pytest.raises(ConfigurationError):
            SetHistoryPredictor(rows=8, cols=1, set_entries=3)


class TestSpecIntegration:
    def test_factory_builds(self):
        spec = make_predictor_spec("sas", rows=16, cols=4, bht_entries=128,
                                   bht_assoc=1)
        predictor = build_predictor(spec)
        assert isinstance(predictor, SetHistoryPredictor)
        assert predictor.set_entries == 128

    def test_default_entries(self):
        spec = make_predictor_spec("sag", rows=16)
        assert build_predictor(spec).set_entries == 1024

    def test_sag_rejects_columns(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("sag", rows=16, cols=2)

    def test_assoc_rejected(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("sas", rows=16, cols=2, bht_entries=64,
                                bht_assoc=2)

    def test_taxonomy(self):
        assert taxonomy_code("sas", rows=8, cols=4) == "SAs"
        assert taxonomy_code("sag", rows=8, cols=1) == "SAg"

    def test_describe_mentions_sets(self):
        spec = make_predictor_spec("sas", rows=16, cols=2, bht_entries=256,
                                   bht_assoc=1)
        assert "sets=256" in spec.describe()


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("cols", [1, 4])
    def test_matches_reference_random(self, cols):
        rng = np.random.default_rng(9)
        pc = (0x1000 + rng.integers(0, 17, size=800) * 4).astype(np.uint64)
        taken = rng.random(800) < 0.6
        trace = BranchTrace(pc=pc, taken=taken, target=pc + np.uint64(16))
        spec = make_predictor_spec(
            "sag" if cols == 1 else "sas",
            rows=16,
            cols=cols,
            bht_entries=8,
            bht_assoc=1,
        )
        fast = simulate_vectorized(spec, trace)
        slow = simulate_reference(spec, trace)
        assert np.array_equal(fast.predictions, slow.predictions)

    def test_matches_reference_workload(self):
        trace = make_workload("compress", length=3_000, seed=8)
        spec = make_predictor_spec("sas", rows=32, cols=2, bht_entries=64,
                                   bht_assoc=1)
        fast = simulate_vectorized(spec, trace)
        slow = simulate_reference(spec, trace)
        assert np.array_equal(fast.predictions, slow.predictions)

    def test_sweepable(self):
        from repro.sim import sweep_tiers

        trace = make_workload("compress", length=2_000, seed=8)
        surface = sweep_tiers("sas", trace, size_bits=[4], bht_entries=64)
        assert len(surface.tier(4)) == 5


class TestFirstLevelContrast:
    def test_tagged_reset_beats_untagged_pollution_under_thrash(self):
        """The paper's tagged-reset policy vs silent pollution, at
        identical first-level sizes, on a thrashing workload: pollution
        must not win."""
        trace = make_workload("real_gcc", length=30_000, seed=2)
        tagged = simulate_vectorized(
            make_predictor_spec("pag", rows=1024, bht_entries=256,
                                bht_assoc=1),
            trace,
        )
        untagged = simulate_vectorized(
            make_predictor_spec("sag", rows=1024, bht_entries=256,
                                bht_assoc=1),
            trace,
        )
        assert (
            tagged.misprediction_rate
            <= untagged.misprediction_rate + 0.01
        )
