"""Tests for PredictorSpec validation and derived properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.predictors import PredictorSpec, build_predictor, make_predictor_spec


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("neural")

    def test_bimodal_rejects_rows(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("bimodal", rows=4, cols=16)

    def test_gag_rejects_columns(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("gag", rows=16, cols=2)

    def test_gas_requires_history(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("gas", rows=1, cols=16)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("gas", rows=12, cols=4)

    def test_bht_only_for_per_address(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("gshare", rows=16, bht_entries=128)

    def test_path_bits_bounded_by_rows(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("path", rows=4, path_bits_per_branch=5)

    def test_static_policy_validated(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("static", static_policy="always")

    def test_static_rejects_table(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("static", cols=16)

    def test_tournament_requires_components(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec("tournament")

    def test_components_only_for_tournament(self):
        with pytest.raises(ConfigurationError):
            make_predictor_spec(
                "gshare",
                rows=16,
                component_a=make_predictor_spec("bimodal", cols=4),
            )


class TestDerived:
    def test_history_bits(self):
        assert make_predictor_spec("gas", rows=64, cols=4).history_bits == 6

    def test_num_counters(self):
        assert make_predictor_spec("gas", rows=64, cols=8).num_counters == 512

    def test_size_label(self):
        assert make_predictor_spec("gas", rows=64, cols=8).size_label == (
            "2^3x2^6"
        )

    def test_with_shape(self):
        spec = make_predictor_spec("gshare", rows=64, cols=2)
        bigger = spec.with_shape(rows=128, cols=4)
        assert bigger.rows == 128 and bigger.cols == 4
        assert bigger.scheme == "gshare"

    def test_describe_mentions_bht(self):
        spec = make_predictor_spec("pas", rows=16, cols=2, bht_entries=128)
        assert "BHT=128" in spec.describe()
        spec = make_predictor_spec("pas", rows=16, cols=2)
        assert "perfect" in spec.describe()

    def test_specs_hashable_and_equal(self):
        a = make_predictor_spec("gas", rows=16, cols=4)
        b = make_predictor_spec("gas", rows=16, cols=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_predictor_spec("gshare", rows=16, cols=4)


class TestSpecSweepProperty:
    @given(
        st.sampled_from(["gas", "gshare", "path", "pas"]),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_valid_shape_builds(self, scheme, row_bits, col_bits):
        if scheme == "path":
            # The path register records 2 bits per target, so the row
            # index must be at least 2 bits wide.
            row_bits = max(row_bits, 2)
        spec = PredictorSpec(
            scheme=scheme, rows=1 << row_bits, cols=1 << col_bits
        )
        predictor = build_predictor(spec)
        predictor.predict(0x104, 0x200)
        predictor.update(0x104, True, 0x200)
