"""Tests for the BTB and the pipeline cost model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pipeline import (
    BranchTargetBuffer,
    PipelineConfig,
    btb_hit_stream,
    evaluate_pipeline,
    pipeline_report,
)
from repro.predictors import make_predictor_spec
from repro.sim import simulate
from repro.sim.results import SimulationResult
from repro.traces import BranchTrace
from repro.workloads import make_workload
from repro.workloads.micro import biased_field_trace, loop_trace


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        assert btb.lookup(0x100) is None
        btb.install(0x100, 0x400)
        assert btb.lookup(0x100) == 0x400

    def test_refresh_updates_target(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        btb.install(0x100, 0x400)
        btb.install(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(entries=2, assoc=2)
        btb.install(0x100, 1)
        btb.install(0x104, 2)
        btb.lookup(0x100)  # refresh
        btb.install(0x108, 3)  # evicts 0x104
        assert btb.lookup(0x104) is None
        assert btb.lookup(0x100) == 1

    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        btb.lookup(0x100)
        btb.install(0x100, 1)
        btb.lookup(0x100)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(entries=8, assoc=3)

    def test_reset(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        btb.install(0x100, 1)
        btb.reset()
        assert btb.lookup(0x100) is None
        assert btb.accesses == 1

    def test_hit_stream_matches_scalar_up_to_fill_policy(self):
        """The shared LRU stream equals the scalar BTB's residency for
        a workload where every branch is taken (fill policies agree)."""
        trace = biased_field_trace(
            branches=20, executions_each=30, taken_probability=1.0, seed=1
        )
        fast = btb_hit_stream(trace, entries=8, assoc=2)
        btb = BranchTargetBuffer(entries=8, assoc=2)
        slow = np.empty(len(trace), dtype=bool)
        for i, (pc, taken, target) in enumerate(trace):
            slow[i] = btb.lookup(pc) is not None
            btb.install(pc, target)
        assert np.array_equal(fast, slow)


class TestPipelineConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.issue_width == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(issue_width=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(redirect_penalty=-1)


class TestEvaluatePipeline:
    def perfect_result(self, trace):
        return SimulationResult(
            spec=make_predictor_spec("static"),
            trace_name=trace.name,
            predictions=trace.taken.copy(),
            taken=trace.taken.copy(),
        )

    def test_cycle_decomposition_exact(self):
        # 10-iteration loop repeated 5 times, all resident in the BTB
        # after the first visit; perfect prediction.
        trace = loop_trace(trips=10, repeats=5)
        result = self.perfect_result(trace)
        config = PipelineConfig(
            issue_width=1, mispredict_penalty=8, redirect_penalty=2,
            btb_entries=8, btb_assoc=1,
        )
        metrics = evaluate_pipeline(result, trace, config)
        assert metrics.mispredictions == 0
        assert metrics.mispredict_cycles == 0
        # One compulsory BTB miss; the branch is taken at that access,
        # so exactly one redirect.
        assert metrics.redirect_cycles == 2
        assert metrics.base_cycles == 50  # instruction_count == length
        assert metrics.cycles == 52

    def test_mispredictions_dominate(self):
        trace = loop_trace(trips=4, repeats=50)
        wrong = self.perfect_result(trace)
        object.__setattr__  # silence linters; result is a plain class
        wrong.predictions = ~trace.taken  # everything mispredicted
        metrics = evaluate_pipeline(wrong, trace, PipelineConfig())
        assert metrics.mispredictions == len(trace)
        assert metrics.branch_overhead > 0.5

    def test_length_mismatch_rejected(self):
        trace = loop_trace(trips=4, repeats=5)
        result = self.perfect_result(trace)
        with pytest.raises(ConfigurationError):
            evaluate_pipeline(result, trace.slice(0, 4))

    def test_rates_consistent(self):
        trace = make_workload("compress", length=6_000, seed=1)
        result = simulate(make_predictor_spec("bimodal", cols=512), trace)
        metrics = evaluate_pipeline(result, trace)
        assert metrics.cpi == pytest.approx(1.0 / metrics.ipc)
        assert metrics.instructions == trace.instruction_count
        assert 0 < metrics.btb_hit_rate <= 1

    def test_better_predictor_better_ipc(self):
        trace = make_workload("mpeg_play", length=20_000, seed=1)
        weak = simulate(make_predictor_spec("static"), trace)
        strong = simulate(
            make_predictor_spec("pas", rows=256, cols=4), trace
        )
        assert (
            evaluate_pipeline(strong, trace).ipc
            > evaluate_pipeline(weak, trace).ipc
        )


class TestPipelineReport:
    def test_report_renders_with_speedups(self):
        trace = make_workload("compress", length=6_000, seed=1)
        labeled = []
        for label, spec in [
            ("static", make_predictor_spec("static")),
            ("bimodal", make_predictor_spec("bimodal", cols=512)),
        ]:
            result = simulate(spec, trace)
            labeled.append((label, evaluate_pipeline(result, trace)))
        text = pipeline_report(labeled)
        assert "IPC" in text and "speedup" in text
        assert "1.000x" in text  # the baseline row

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pipeline_report([])
