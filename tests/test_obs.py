"""Observability-layer tests: spans, metrics, logging, reports, CLI."""

import json

import pytest

from repro.cli import EXIT_ERROR, main
from repro.obs import (
    METRICS_SCHEMA,
    ProgressReporter,
    collect,
    counter,
    get_tracer,
    histogram,
    render_summary,
    reset_metrics,
    snapshot,
    span,
    summarize_path,
    teardown_logging,
    traced,
    write_metrics,
)
from repro.obs.logging import JsonFormatter, KeyValueFormatter, setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.runtime import clear_faults
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload


@pytest.fixture(autouse=True)
def _clean_telemetry():
    reset_metrics()
    get_tracer().reset()
    yield
    clear_faults()
    get_tracer().close_sink()
    get_tracer().reset()
    reset_metrics()
    teardown_logging()


@pytest.fixture
def trace():
    return make_workload("compress", length=2000, seed=0)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer" and outer.attrs == {"k": 1}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert all(c.depth == 1 for c in outer.children)

    def test_timing_monotonicity(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert 0 <= inner.duration <= outer.duration

    def test_aggregates(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("work"):
                pass
        agg = tracer.aggregates()["work"]
        assert agg["count"] == 3
        assert agg["min_s"] <= agg["mean_s"] <= agg["max_s"]
        assert agg["total_s"] == pytest.approx(3 * agg["mean_s"])

    def test_record_cap_keeps_aggregates(self):
        tracer = SpanTracer(max_records=2)
        for _ in range(5):
            with tracer.span("work"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped == 3
        assert tracer.aggregates()["work"]["count"] == 5

    def test_jsonl_sink(self, tmp_path):
        tracer = SpanTracer()
        out = tmp_path / "trace.jsonl"
        tracer.configure_sink(str(out))
        with tracer.span("outer", scheme="gas"):
            with tracer.span("inner"):
                pass
        tracer.close_sink()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        # Spans are written on completion: inner lands first.
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["attrs"] == {"scheme": "gas"}
        assert records[0]["depth"] == 1
        assert all(r["dur_s"] >= 0 for r in records)

    def test_traced_decorator(self):
        @traced("decorated")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert get_tracer().aggregates()["decorated"]["count"] == 1

    def test_global_span_helper(self):
        with span("global_helper"):
            pass
        assert "global_helper" in get_tracer().aggregates()


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        c.inc()
        c.inc(2.5)
        assert registry.counter("x") is c
        assert registry.snapshot()["counters"]["x"] == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_semantics(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = registry.snapshot()["histograms"]["h"]
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        # Bucketed percentiles are upper-bound estimates clamped to the
        # observed range; every observation landed in a real bucket.
        assert 1.0 <= summary["p50"] <= summary["p90"] <= summary["p99"] <= 3.0
        assert sum(n for _, n in summary["buckets"]) == 3

    def test_histogram_percentiles_spread(self):
        from repro.obs.metrics import BUCKET_BOUNDS, Histogram

        h = Histogram("h")
        for v in [0.001] * 90 + [10.0] * 10:
            h.observe(v)
        summary = h.summary()
        # p50 sits in the low mode, p99 in the high tail; the bucketed
        # estimate is within one log-spaced bucket of the true value.
        assert summary["p50"] <= BUCKET_BOUNDS[Histogram.bucket_index(0.001)]
        assert summary["p99"] >= 1.0
        assert summary["min"] == 0.001 and summary["max"] == 10.0

    def test_histogram_absorb_merges_buckets(self):
        from repro.obs.metrics import Histogram

        a = Histogram("a")
        b = Histogram("b")
        for v in (0.01, 0.02, 0.03):
            a.observe(v)
        for v in (5.0, 6.0, 7.0):
            b.observe(v)
        a.absorb(b.summary())
        merged = a.summary()
        assert merged["count"] == 6
        assert merged["min"] == 0.01 and merged["max"] == 7.0
        # The distribution survives the merge: the median stays near the
        # low half while p99 reflects the absorbed tail.
        assert merged["p50"] < 1.0
        assert merged["p99"] > 1.0
        assert sum(n for _, n in merged["buckets"]) == 6

    def test_gauge_and_reset(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7)
        assert registry.snapshot()["gauges"]["g"] == 7
        registry.counter("guard.degradations").inc()
        registry.reset()
        snap = registry.snapshot()
        assert "g" not in snap["gauges"]
        assert snap["counters"]["guard.degradations"] == 0

    def test_well_known_counters_predeclared(self):
        snap = snapshot()
        for name in ("guard.degradations", "checkpoint.appends",
                     "sweep.points_restored", "faults.injected"):
            assert snap["counters"][name] == 0


class TestSweepTelemetry:
    def test_sweep_reports_points_and_branches(self, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        counters = snapshot()["counters"]
        assert counters["sweep.points_computed"] == 5  # row_bits 0..4
        assert counters["sim.branches"] == 5 * len(trace)
        assert snapshot()["histograms"]["sweep.point_s"]["count"] == 5
        aggs = get_tracer().aggregates()
        assert aggs["sweep_tiers"]["count"] == 1
        assert aggs["sweep.point"]["count"] == 5

    def test_checkpointed_resume_counts_restored(self, tmp_path, trace):
        sweep_tiers("gas", trace, size_bits=[4],
                    checkpoint_dir=str(tmp_path))
        assert snapshot()["counters"]["checkpoint.appends"] == 5
        reset_metrics()
        sweep_tiers("gas", trace, size_bits=[4],
                    checkpoint_dir=str(tmp_path))
        counters = snapshot()["counters"]
        assert counters["sweep.points_restored"] == 5
        assert counters["sweep.points_computed"] == 0

    def test_fault_injected_degradation_increments_guard_counter(
        self, monkeypatch, trace
    ):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "engine.vectorized:raise@1")
        clear_faults()  # drop any cached plan so the env var is re-read
        sweep_tiers("gas", trace, size_bits=[4])
        counters = snapshot()["counters"]
        assert counters["guard.degradations"] == 1
        assert counters["faults.injected"] == 1
        assert counters["engine.reference.runs"] >= 1

    def test_on_point_hook_sees_every_point(self, tmp_path, trace):
        calls = []
        sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path),
            on_point=lambda point, done, total: calls.append((done, total)),
        )
        assert calls == [(i, 5) for i in range(1, 6)]
        # Restored points report through the same hook.
        calls.clear()
        sweep_tiers(
            "gas", trace, size_bits=[4], checkpoint_dir=str(tmp_path),
            on_point=lambda point, done, total: calls.append((done, total)),
        )
        assert calls == [(i, 5) for i in range(1, 6)]


class TestProgressReporter:
    def test_heartbeat_rate_and_eta(self, capsys):
        clock = iter(float(i) for i in range(100))
        reporter = ProgressReporter(
            label="fig4", min_interval_s=0.0, clock=lambda: next(clock)
        )
        for done in range(1, 4):
            reporter.on_point(None, done, 10)
        err = capsys.readouterr().err
        lines = err.strip().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("[progress] fig4")
        assert "3/10 points (30%)" in lines[-1]
        assert "pts/s" in lines[-1] and "eta" in lines[-1]

    def test_throttling(self, capsys):
        reporter = ProgressReporter(min_interval_s=3600.0, clock=lambda: 0.0)
        for done in range(1, 5):
            reporter.update(done, 100)
        assert reporter.emitted == 1  # only the first is due
        assert reporter.updates == 4


class TestLogging:
    def test_kv_formatter_appends_context(self):
        import logging as stdlib_logging

        record = stdlib_logging.LogRecord(
            "repro.x", stdlib_logging.WARNING, __file__, 1,
            "degraded", (), None,
        )
        record.kv = {"scheme": "gas", "n": 4}
        assert KeyValueFormatter().format(record) == "degraded scheme=gas n=4"

    def test_json_formatter(self):
        import logging as stdlib_logging

        record = stdlib_logging.LogRecord(
            "repro.x", stdlib_logging.ERROR, __file__, 1, "boom", (), None,
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["level"] == "error"
        assert payload["logger"] == "repro.x"
        assert payload["msg"] == "boom"

    def test_setup_is_idempotent(self):
        import logging as stdlib_logging

        logger = setup_logging("info")
        setup_logging("debug")
        handlers = [
            h for h in stdlib_logging.getLogger("repro").handlers
        ]
        assert len(handlers) == 1
        assert logger.level == stdlib_logging.DEBUG

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("loud")


class TestReport:
    def test_collect_has_schema_and_derived(self, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        report = collect()
        assert report["schema"] == METRICS_SCHEMA
        assert report["derived"]["branches_per_sec"] > 0
        assert report["counters"]["sweep.points_computed"] == 5

    def test_render_summary_lists_counters_and_spans(self, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        text = render_summary()
        assert "phase timings" in text
        assert "sweep_tiers" in text
        assert "sweep.points_computed" in text

    def test_write_metrics_round_trip(self, tmp_path, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        path = tmp_path / "m.json"
        write_metrics(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == METRICS_SCHEMA
        summary = summarize_path(str(path))
        assert "sweep_tiers" in summary and "counters" in summary

    def test_summarize_rejects_junk(self, tmp_path):
        bad = tmp_path / "junk.txt"
        bad.write_text("not json at all\n")
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            summarize_path(str(bad))

    def test_summarize_missing_file_is_a_repro_error(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            summarize_path(str(tmp_path / "absent.json"))


class TestCliTelemetry:
    RUN = ["run", "fig2", "--length", "2000",
           "--benchmark", "compress", "--sizes", "4", "6"]

    def test_metrics_and_trace_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        spans = tmp_path / "t.jsonl"
        code = main(
            self.RUN
            + ["--metrics-out", str(metrics), "--trace-out", str(spans)]
        )
        assert code == 0
        report = json.loads(metrics.read_text())
        assert report["schema"] == METRICS_SCHEMA
        assert report["derived"]["branches_per_sec"] > 0
        assert report["counters"]["guard.degradations"] == 0
        assert report["counters"]["checkpoint.appends"] == 0
        lines = [json.loads(l) for l in spans.read_text().splitlines()]
        assert any(r["name"] == "sweep_tiers" for r in lines)
        capsys.readouterr()
        # Round-trip both files through the summarize subcommand.
        assert main(["obs", "summarize", str(metrics)]) == 0
        assert "sweep.points_computed" in capsys.readouterr().out
        assert main(["obs", "summarize", str(spans)]) == 0
        assert "sweep_tiers" in capsys.readouterr().out

    def test_metrics_capture_checkpoint_and_fault_counters(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "engine.vectorized:raise@1")
        clear_faults()
        metrics = tmp_path / "m.json"
        code = main(
            self.RUN
            + ["--checkpoint-dir", str(tmp_path / "ckpt"),
               "--metrics-out", str(metrics)]
        )
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["guard.degradations"] == 1
        assert counters["faults.injected"] == 1
        assert counters["checkpoint.appends"] == 2
        assert counters["checkpoint.flushes"] >= 1

    def test_progress_heartbeat(self, capsys):
        assert main(self.RUN + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress] fig2" in err
        assert "2/2 points (100%)" in err

    def test_error_path_still_one_line_via_logging(self, capsys):
        assert main(["run", "fig99", "--length", "100"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_json_log_format_error_line(self, capsys):
        code = main(
            ["run", "fig99", "--length", "100", "--log-format", "json"]
        )
        assert code == EXIT_ERROR
        payload = json.loads(capsys.readouterr().err)
        assert payload["level"] == "error"
        assert payload["msg"].startswith("error: ")

    def test_unwritable_metrics_path_errors(self, tmp_path, capsys):
        code = main(
            self.RUN + ["--metrics-out", str(tmp_path / "no" / "m.json")]
        )
        assert code == EXIT_ERROR
        assert "cannot write metrics" in capsys.readouterr().err


class TestCollectExtras:
    def test_extras_namespaced_under_extra(self):
        report = collect(extra={"experiment": "fig2", "note": 1})
        assert report["extra"] == {"experiment": "fig2", "note": 1}
        assert "experiment" not in report  # never a top-level key

    def test_reserved_keys_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError) as excinfo:
            collect(extra={"counters": {}, "schema": "x", "ok": 1})
        assert "counters" in str(excinfo.value)
        assert "schema" in str(excinfo.value)

    def test_no_extra_key_without_extras(self):
        assert "extra" not in collect()
        assert "extra" not in collect(extra={})

    def test_render_summary_shows_extras(self):
        text = render_summary(collect(extra={"experiment": "fig2"}))
        assert "extra" in text and "fig2" in text


class TestDerivedRates:
    """The wall/cpu split behind ``derived.branches_per_sec``."""

    def test_serial_wall_equals_cpu(self, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        derived = collect()["derived"]
        assert derived["sim_wall_s"] > 0
        assert derived["sim_cpu_s"] == pytest.approx(derived["sim_wall_s"])
        assert derived["branches_per_sec"] == pytest.approx(
            5 * len(trace) / derived["sim_wall_s"]
        )

    def test_parallel_rate_uses_elapsed_wall_not_summed_cpu(self, trace):
        import time as _time

        started = _time.perf_counter()
        sweep_tiers("gas", trace, size_bits=[4], workers=2)
        outer_elapsed = _time.perf_counter() - started
        derived = collect()["derived"]
        # Wall is the parent's elapsed parallel region — bounded by the
        # region we just timed — not the sum of worker engine seconds
        # (which lands in sim_cpu_s instead).
        assert 0 < derived["sim_wall_s"] <= outer_elapsed
        assert derived["sim_cpu_s"] > 0
        assert derived["branches_per_sec"] == pytest.approx(
            5 * len(trace) / derived["sim_wall_s"]
        )


class TestSummarizeRobustness:
    def test_empty_file_is_a_repro_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["obs", "summarize", str(empty)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "empty" in err and "Traceback" not in err

    def test_unknown_schema_is_a_repro_error(self, tmp_path, capsys):
        alien = tmp_path / "alien.json"
        alien.write_text(json.dumps({"schema": "somebody.else/9"}))
        assert main(["obs", "summarize", str(alien)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "somebody.else/9" in err and "Traceback" not in err

    def test_torn_final_trace_line_is_tolerated(self, tmp_path, capsys):
        spans = tmp_path / "t.jsonl"
        tracer = get_tracer()
        tracer.configure_sink(str(spans))
        with tracer.span("work"):
            pass
        tracer.close_sink()
        with open(spans, "a", encoding="ascii") as handle:
            handle.write('{"kind": "span", "name": "torn')
        assert main(["obs", "summarize", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "torn final line skipped" in out
        assert "work" in out

    def test_torn_mid_file_line_still_fails(self, tmp_path, capsys):
        spans = tmp_path / "t.jsonl"
        tracer = get_tracer()
        tracer.configure_sink(str(spans))
        with tracer.span("work"):
            pass
        tracer.close_sink()
        good = spans.read_text()
        spans.write_text(good + "junk\n" + good)
        assert main(["obs", "summarize", str(spans)]) == EXIT_ERROR
        assert "bad trace line" in capsys.readouterr().err
