"""Structural property tests on the vectorized index/history streams.

The prediction-level equivalence tests (test_sim_equivalence) catch
end-to-end mismatches; these tests pin down the intermediate streams
directly, which localizes failures and documents the indexing
contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import make_predictor_spec
from repro.predictors.bht import BranchHistoryTable, PerfectHistoryTable
from repro.sim.vectorized import (
    bht_miss_stream,
    global_history_stream,
    index_stream,
    path_register_stream,
    per_address_history_stream,
)
from repro.traces import BranchTrace


def random_trace(seed, length=300, npcs=10):
    rng = np.random.default_rng(seed)
    pc = (0x2000 + rng.integers(0, npcs, size=length) * 4).astype(np.uint64)
    taken = rng.random(length) < 0.6
    target = pc + np.uint64(32)
    return BranchTrace(pc=pc, taken=taken, target=target)


BOUNDED_SPECS = [
    make_predictor_spec("bimodal", cols=32),
    make_predictor_spec("gag", rows=32),
    make_predictor_spec("gas", rows=8, cols=4),
    make_predictor_spec("gshare", rows=16, cols=2),
    make_predictor_spec("path", rows=16, cols=2),
    make_predictor_spec("pas", rows=8, cols=4),
    make_predictor_spec("pas", rows=8, cols=4, bht_entries=8, bht_assoc=2),
    make_predictor_spec("sas", rows=8, cols=4, bht_entries=16, bht_assoc=1),
    make_predictor_spec("agree", rows=32),
]


class TestIndexBounds:
    @pytest.mark.parametrize(
        "spec", BOUNDED_SPECS, ids=[s.describe() for s in BOUNDED_SPECS]
    )
    def test_indices_within_table(self, spec):
        trace = random_trace(3)
        indices = index_stream(spec, trace)
        assert indices.min() >= 0
        assert indices.max() < spec.num_counters

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_bounds_hold_for_any_trace(self, seed):
        trace = random_trace(seed, length=120, npcs=30)
        for spec in (BOUNDED_SPECS[2], BOUNDED_SPECS[3], BOUNDED_SPECS[6]):
            indices = index_stream(spec, trace)
            assert indices.max() < spec.num_counters


class TestGlobalHistoryStream:
    def test_matches_register_semantics(self):
        taken = np.array([True, False, True, True])
        gh = global_history_stream(taken, bits=3)
        # Before access 0: empty history.
        assert gh[0] == 0
        # Before access 3: outcomes [T,F,T] with newest (T) in bit 0.
        assert gh[3] == 0b101

    def test_bimodal_independent_of_outcomes(self):
        trace = random_trace(5)
        flipped = BranchTrace(
            pc=trace.pc, taken=~trace.taken, target=trace.target
        )
        spec = make_predictor_spec("bimodal", cols=16)
        assert np.array_equal(
            index_stream(spec, trace), index_stream(spec, flipped)
        )

    def test_gshare_one_row_degenerates_to_bimodal(self):
        """gshare with 2^0 rows has no history contribution: its index
        stream equals the equally-sized bimodal table's."""
        trace = random_trace(6)
        # rows=1 is invalid for gshare by validation; emulate via GAs
        # tier logic instead: the r=0 tier point IS bimodal.
        from repro.sim.sweep import spec_for_point

        spec = spec_for_point("gshare", col_bits=5, row_bits=0)
        assert spec.scheme == "bimodal"


class TestPathRegisterStream:
    def test_records_previous_destinations(self):
        pc = np.array([0x100, 0x200, 0x300], dtype=np.uint64)
        taken = np.array([True, False, True])
        target = np.array([0x140, 0x240, 0x340], dtype=np.uint64)
        trace = BranchTrace(pc=pc, taken=taken, target=target)
        register = path_register_stream(trace, row_bits=6, bits_per_target=3)
        assert register[0] == 0
        # Access 1 sees access 0's destination (taken -> 0x140).
        assert register[1] == (0x140 >> 2) & 0b111
        # Access 2: newest chunk is access 1's fall-through (0x204).
        expected = (((0x140 >> 2) & 0b111) << 3) | ((0x204 >> 2) & 0b111)
        assert register[2] == expected & 0b111111


class TestPerAddressHistoryStream:
    def test_matches_perfect_table(self):
        trace = random_trace(9, length=200, npcs=6)
        stream = per_address_history_stream(trace, bits=5)
        table = PerfectHistoryTable(history_bits=5)
        for i, (pc, taken, _) in enumerate(trace):
            expected, _ = table.lookup(pc)
            assert stream[i] == expected, f"access {i}"
            table.record(pc, taken)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_tagged_bht_histories(self, seed):
        """The reset-and-restart history reconstruction must equal the
        scalar tagged table's register contents at every access."""
        trace = random_trace(seed, length=150, npcs=12)
        miss = bht_miss_stream(trace, entries=4, assoc=2)
        stream = per_address_history_stream(trace, bits=4, miss=miss)
        table = BranchHistoryTable(entries=4, assoc=2, history_bits=4)
        for i, (pc, taken, _) in enumerate(trace):
            expected, _ = table.lookup(pc)
            assert stream[i] == expected, f"access {i}"
            table.record(pc, taken)

    def test_group_key_overrides_pc(self):
        """With a constant group key, every access shares one register:
        the history becomes the global direction history (plus reset
        prefix padding)."""
        trace = random_trace(2, length=50, npcs=8)
        key = np.zeros(len(trace), dtype=np.int64)
        stream = per_address_history_stream(trace, bits=3, group_key=key)
        gh = global_history_stream(trace.taken, bits=3)
        # After 3+ accesses the reset prefix has shifted out entirely.
        assert np.array_equal(stream[3:], gh[3:])
