"""Tests for the per-branch behaviour models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.behaviors import (
    BehaviorContext,
    BiasedBehavior,
    CorrelatedBehavior,
    PatternBehavior,
    behavior_summary,
    make_pattern,
    population_mix_taken_rate,
)


def rng_for(seed=0):
    return np.random.default_rng(seed)


class TestBiasedBehavior:
    def test_extreme_probabilities(self):
        ctx = BehaviorContext()
        assert BiasedBehavior(1.0).outcomes(rng_for(), 50, ctx).all()
        assert not BiasedBehavior(0.0).outcomes(rng_for(), 50, ctx).any()

    def test_rate_close_to_p(self):
        out = BiasedBehavior(0.7).outcomes(rng_for(1), 20_000, BehaviorContext())
        assert abs(out.mean() - 0.7) < 0.02

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BiasedBehavior(1.5)

    def test_expected_rate(self):
        assert BiasedBehavior(0.25).expected_taken_rate() == 0.25


class TestPatternBehavior:
    def test_repeats_pattern(self):
        b = PatternBehavior((True, True, False))
        out = b.outcomes(rng_for(), 6, BehaviorContext())
        assert list(out) == [True, True, False, True, True, False]

    def test_phase_persists_across_calls_via_store(self):
        b = PatternBehavior((True, False))
        store = {}
        first = b.outcomes(rng_for(), 3, BehaviorContext(store=store))
        second = b.outcomes(rng_for(), 3, BehaviorContext(store=store))
        combined = list(first) + list(second)
        assert combined == [True, False, True, False, True, False]

    def test_fresh_store_restarts_pattern(self):
        # Trace generation must be a pure function of (program, seed):
        # a new per-trace store restarts the phase.
        b = PatternBehavior((True, False, False))
        first = b.outcomes(rng_for(), 4, BehaviorContext(store={}))
        second = b.outcomes(rng_for(), 4, BehaviorContext(store={}))
        assert list(first) == list(second)

    def test_short_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternBehavior((True,))

    def test_expected_rate(self):
        assert PatternBehavior((True, True, False)).expected_taken_rate() == (
            pytest.approx(2 / 3)
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_make_pattern_is_nonconstant(self, seed):
        pattern = make_pattern(np.random.default_rng(seed))
        assert 2 <= len(pattern) <= 6
        assert any(pattern) and not all(pattern)


class TestCorrelatedBehavior:
    def test_follows_source_exactly_without_noise(self):
        source = np.array([True, False, True, True])
        ctx = BehaviorContext(body_outcomes={0: source})
        b = CorrelatedBehavior(source_slot=0, invert=False, noise=0.0)
        assert np.array_equal(b.outcomes(rng_for(), 4, ctx), source)

    def test_invert(self):
        source = np.array([True, False])
        ctx = BehaviorContext(body_outcomes={0: source})
        b = CorrelatedBehavior(source_slot=0, invert=True, noise=0.0)
        assert np.array_equal(b.outcomes(rng_for(), 2, ctx), ~source)

    def test_noise_flips_some(self):
        source = np.ones(10_000, dtype=bool)
        ctx = BehaviorContext(body_outcomes={0: source})
        b = CorrelatedBehavior(source_slot=0, noise=0.2)
        out = b.outcomes(rng_for(3), 10_000, ctx)
        assert abs((~out).mean() - 0.2) < 0.02

    def test_missing_source_rejected(self):
        b = CorrelatedBehavior(source_slot=3)
        with pytest.raises(ConfigurationError):
            b.outcomes(rng_for(), 4, BehaviorContext())

    def test_length_mismatch_rejected(self):
        ctx = BehaviorContext(body_outcomes={0: np.array([True])})
        with pytest.raises(ConfigurationError):
            CorrelatedBehavior(0).outcomes(rng_for(), 4, ctx)

    def test_negative_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            CorrelatedBehavior(-1)


class TestSummaries:
    def test_behavior_summary_tokens(self):
        assert behavior_summary(BiasedBehavior(0.5)) == "biased(0.50)"
        assert behavior_summary(PatternBehavior((True, False))) == "pattern(TN)"
        assert "slot=2" in behavior_summary(CorrelatedBehavior(2))

    def test_population_mix(self):
        pop = [BiasedBehavior(0.0), BiasedBehavior(1.0)]
        assert population_mix_taken_rate(pop) == 0.5

    def test_population_mix_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            population_mix_taken_rate([])
