"""Static dealiasing-benefit estimator: model pieces and validation.

The estimator's contract has two halves, tested at two speeds:

* the analytic building blocks (counter stationary misprediction,
  row-occupancy distributions, class deltas) have closed-form expected
  values checked exactly here;
* the end-to-end claim — static predictions rank a tier's splits as
  the real engine does — is asserted by ``validate_dealias`` against
  simulated Figure-9 surfaces (one cell here; the full grid runs in
  CI via ``repro check dealias --validate``).
"""

import numpy as np
import pytest

from repro.aliasing import (
    branch_weights_from_program,
    branch_weights_from_trace,
    dealias_delta,
    interference_free_predictions,
    stream_taken_rate,
)
from repro.check import (
    SplitDelta,
    check_dealias,
    predict_dealias_delta,
    predicted_split_deltas,
    validate_dealias,
)
from repro.check.estimator import ABS_ERROR_BOUND, TIE_EPSILON
from repro.cli import main
from repro.errors import CheckError, ConfigurationError, TraceError
from repro.predictors.specs import (
    PredictorSpec,
    counter_stationary_misprediction,
    counter_stationary_misprediction_array,
    history_row_distribution,
    xor_permuted_distribution,
)
from repro.workloads.micro import (
    biased_field_trace,
    interference_field_trace,
)
from repro.workloads.profiles import get_profile
from repro.workloads.program import build_program


class TestCounterStationaryMisprediction:
    def test_pure_branches_never_mispredict(self):
        assert counter_stationary_misprediction(0.0) == 0.0
        assert counter_stationary_misprediction(1.0) == 0.0

    def test_coin_flip_is_half(self):
        assert counter_stationary_misprediction(0.5) == pytest.approx(0.5)

    def test_symmetric_in_direction(self):
        for rate in (0.02, 0.25, 0.4):
            assert counter_stationary_misprediction(
                rate
            ) == pytest.approx(counter_stationary_misprediction(1 - rate))

    def test_known_value_for_steady_branch(self):
        # p=0.98, 2-bit counter: pi ~ r^s with r=1/49; the chain sits
        # in the top state and mispredicts barely above 2%.
        rate = counter_stationary_misprediction(0.98)
        assert 0.02 < rate < 0.021

    def test_exceeds_minority_rate(self):
        # The counter keeps re-crossing the threshold, so it always
        # loses slightly more than an oracle static predictor.
        for p in (0.1, 0.3, 0.45):
            assert counter_stationary_misprediction(p) > p

    def test_array_matches_scalar(self):
        rates = np.array([0.0, 0.1, 0.5, 0.9, 1.0])
        vectorized = counter_stationary_misprediction_array(rates)
        assert vectorized == pytest.approx(
            [counter_stationary_misprediction(float(p)) for p in rates]
        )

    def test_rejects_rates_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            counter_stationary_misprediction(1.5)


class TestRowDistributions:
    def test_is_a_distribution(self):
        for q in (0.0, 0.3, 0.5, 1.0):
            dist = history_row_distribution(4, q)
            assert dist.shape == (16,)
            assert dist.sum() == pytest.approx(1.0)

    def test_balanced_stream_is_uniform(self):
        assert history_row_distribution(3, 0.5) == pytest.approx(
            np.full(8, 1 / 8)
        )

    def test_pure_taken_concentrates_on_all_ones(self):
        dist = history_row_distribution(3, 1.0)
        assert dist[0b111] == 1.0

    def test_xor_permutation_relabels_rows(self):
        dist = history_row_distribution(3, 0.9)
        permuted = xor_permuted_distribution(dist, 0b101)
        assert permuted.sum() == pytest.approx(1.0)
        assert permuted[0b010] == dist[0b111]

    def test_xor_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            xor_permuted_distribution(np.array([0.5, 0.3, 0.2]), 1)


class TestBranchWeights:
    def test_from_trace_recovers_the_field(self):
        trace = interference_field_trace(branches=16, length=24000)
        weights = branch_weights_from_trace(trace)
        assert len(weights) == 16
        assert sum(w.weight for w in weights) == pytest.approx(1.0)
        # Hottest-first ordering.
        assert all(
            a.weight >= b.weight for a, b in zip(weights, weights[1:])
        )
        # Mixed field: the blended stream sits near a fair coin.
        assert stream_taken_rate(weights) == pytest.approx(0.5, abs=0.05)

    def test_from_program_is_normalized(self):
        program = build_program(get_profile("espresso"), seed=0)
        weights = branch_weights_from_program(program)
        assert sum(w.weight for w in weights) == pytest.approx(1.0)
        assert all(0.0 <= w.taken_rate <= 1.0 for w in weights)

    def test_empty_trace_raises(self):
        trace = interference_field_trace(length=100).slice(0, 0)
        with pytest.raises(TraceError):
            branch_weights_from_trace(trace)


class TestSimulatedDealiasDelta:
    def test_private_tables_change_aliased_predictions(self):
        trace = interference_field_trace(branches=16, length=4000)
        spec = PredictorSpec(scheme="bimodal", cols=4)  # 4x oversubscribed
        shared_differs = interference_free_predictions(spec, trace)
        assert dealias_delta(spec, trace) > 0.1
        assert shared_differs.shape == (len(trace),)

    def test_singleton_classes_have_zero_delta(self):
        # Every branch in its own column: private tables are identical
        # to the shared one, access for access.
        trace = biased_field_trace(branches=8, executions_each=100)
        spec = PredictorSpec(scheme="bimodal", cols=8)
        assert dealias_delta(spec, trace) == 0.0


class TestPredictDealiasDelta:
    def pair(self, rate_a, rate_b):
        from repro.aliasing.weights import BranchWeight

        return [
            BranchWeight(pc=0x1000, weight=0.5, taken_rate=rate_a),
            BranchWeight(pc=0x1000 + 4, weight=0.5, taken_rate=rate_b),
        ]

    def test_same_direction_class_is_free(self):
        # The paper's harmless collision: both steady taken.
        spec = PredictorSpec(scheme="bimodal", cols=1)
        split = predict_dealias_delta(spec, self.pair(0.98, 0.98))
        assert split.predicted_delta == pytest.approx(0.0, abs=1e-12)
        assert split.alias_classes == 1
        assert split.harmful_classes == 0

    def test_opposite_directions_cost_the_blend(self):
        # 50/50 mix of opposite steady branches blends to a fair coin:
        # the shared counter loses M(0.5) - M(0.98) over private ones.
        spec = PredictorSpec(scheme="bimodal", cols=1)
        split = predict_dealias_delta(spec, self.pair(0.98, 0.02))
        expected = 0.5 - counter_stationary_misprediction(0.98)
        assert split.predicted_delta == pytest.approx(expected)
        assert split.harmful_classes == 1

    def test_separate_columns_are_free(self):
        spec = PredictorSpec(scheme="bimodal", cols=2)
        split = predict_dealias_delta(spec, self.pair(0.98, 0.02))
        assert split.predicted_delta == 0.0
        assert split.alias_classes == 0

    def test_gshare_rows_dilute_the_conflict(self):
        # A skewed stream makes the history occupancy non-uniform, and
        # the per-branch xor permutations misalign the peaks: per-row
        # blends are less even than the flat blend, so rows recover
        # part of the conflict cost.
        from repro.aliasing.weights import BranchWeight

        weights = [
            BranchWeight(pc=0x1000, weight=0.75, taken_rate=0.98),
            BranchWeight(pc=0x1004, weight=0.25, taken_rate=0.02),
        ]
        flat = predict_dealias_delta(
            PredictorSpec(scheme="bimodal", cols=1), weights
        )
        spread = predict_dealias_delta(
            PredictorSpec(scheme="gshare", rows=8, cols=1), weights
        )
        assert 0.0 < spread.predicted_delta < flat.predicted_delta

    def test_per_address_rows_separate_opposite_pure_branches(self):
        # PAs: each branch's register concentrates on its own pattern,
        # so opposite near-pure branches barely share rows.
        split = predict_dealias_delta(
            PredictorSpec(scheme="pas", rows=8, cols=1),
            self.pair(0.98, 0.02),
        )
        assert split.predicted_delta < 0.01

    def test_finite_bht_pollution_restores_conflict(self):
        # With an oversubscribed first level, polluted registers pile
        # both branches onto the reset row: conflict comes back.
        clean = predict_dealias_delta(
            PredictorSpec(scheme="pas", rows=8, cols=1),
            self.pair(0.98, 0.02),
        )
        extra = [
            w
            for i in range(8)
            for w in (
                self.pair(0.98, 0.02)[0].__class__(
                    pc=0x1000 + 4 * (2 + i), weight=1e-9, taken_rate=0.5
                ),
            )
        ]
        polluted = predict_dealias_delta(
            PredictorSpec(
                scheme="pas", rows=8, cols=1, bht_entries=4, bht_assoc=1
            ),
            self.pair(0.98, 0.02) + extra,
        )
        assert polluted.predicted_delta > clean.predicted_delta

    def test_schemes_without_shared_tables_are_rejected(self):
        spec = PredictorSpec(scheme="static")
        with pytest.raises(CheckError):
            predict_dealias_delta(spec, self.pair(0.9, 0.1))

    def test_empty_population_is_rejected(self):
        with pytest.raises(CheckError):
            predict_dealias_delta(
                PredictorSpec(scheme="bimodal", cols=1), []
            )


class TestPredictedSplitDeltas:
    def test_covers_the_whole_tier(self):
        trace = interference_field_trace(branches=16, length=8000)
        weights = branch_weights_from_trace(trace)
        splits = predicted_split_deltas("gshare", weights, 6)
        assert len(splits) == 7
        assert [s.row_bits for s in splits] == list(range(7))
        assert all(isinstance(s, SplitDelta) for s in splits)
        # Enough columns for the field: nothing left to dealias.
        assert splits[0].predicted_delta == 0.0
        # One column: everything shares, the cost is large.
        assert splits[-1].predicted_delta > 0.1

    def test_rejects_unsweepable_scheme(self):
        trace = interference_field_trace(length=1000)
        weights = branch_weights_from_trace(trace)
        with pytest.raises(CheckError):
            predicted_split_deltas("agree", weights, 6)


class TestCheckDealiasPass:
    def test_one_finding_per_cell_with_delta_surface(self):
        findings = check_dealias(
            benchmarks=("espresso",),
            schemes=("gshare", "pas"),
            size_bits=(8,),
        )
        assert [f.check for f in findings] == ["dealias.benefit"] * 2
        for finding in findings:
            assert len(finding.data["deltas"]) == 9
            assert finding.data["worst_delta"] >= finding.data["best_delta"]

    def test_small_global_tables_warn(self):
        (finding,) = check_dealias(
            benchmarks=("espresso",), schemes=("gshare",), size_bits=(8,)
        )
        # The paper's regime: a large workload on 256 counters cannot
        # be dealiased by any (c, r) choice.
        assert finding.severity == "warning"


class TestValidation:
    def test_one_cell_agrees_with_the_engine(self):
        (finding,) = validate_dealias(
            micros=("mixed-field",), schemes=("gshare",)
        )
        assert finding.check == "dealias.validation"
        assert finding.severity == "info", finding.why
        assert finding.data["discordant_pairs"] == 0
        assert finding.data["max_abs_error"] <= ABS_ERROR_BOUND
        assert finding.data["tie_epsilon"] == TIE_EPSILON

    def test_unknown_micro_is_rejected(self):
        with pytest.raises(CheckError):
            validate_dealias(micros=("no-such-field",))


class TestDealiasCli:
    def test_static_pass_exits_clean(self, capsys):
        code = main(
            [
                "check", "dealias",
                "--benchmark", "espresso", "--sizes", "8",
            ]
        )
        assert code == 0
        assert "dealias.benefit" in capsys.readouterr().out

    def test_validate_flag_runs_the_harness(self, capsys):
        code = main(
            [
                "check", "dealias", "--validate",
                "--micro", "skewed-field", "--scheme", "pas",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dealias.validation" in out
        assert "matches simulation" in out

    def test_dealias_is_not_part_of_all(self, capsys):
        assert main(["check", "all"]) == 0
        out = capsys.readouterr().out
        assert "dealias" not in out
