"""Tests for the configs pass and the pre-sweep guard."""

import json

import pytest

from repro.check import (
    CheckReport,
    Finding,
    canonical_specs,
    check_configs,
    nearest_sound_split,
    verify_spec,
    verify_spec_dict,
    verify_sweep_plan,
)
from repro.check.configs import load_spec_file
from repro.errors import CheckError, ConfigurationError
from repro.obs.metrics import counter, reset_metrics
from repro.predictors.specs import PredictorSpec
from repro.sim.sweep import sweep_tiers
from repro.workloads.micro import biased_field_trace


def errors_of(findings):
    return [f for f in findings if f.severity == "error"]


class TestVerifySpec:
    def test_canonical_specs_are_clean(self):
        for label, spec in canonical_specs():
            findings = verify_spec(spec, point=f"canonical:{label}")
            assert not errors_of(findings), (label, findings)

    def test_sound_sweep_spec_passes_with_budget(self):
        spec = PredictorSpec(scheme="gshare", rows=64, cols=16)
        assert not errors_of(verify_spec(spec, budget_bits=10))

    def test_budget_mismatch_is_an_error(self):
        spec = PredictorSpec(scheme="gshare", rows=4, cols=4)
        findings = verify_spec(spec, budget_bits=5)
        assert [f.check for f in errors_of(findings)] == ["config.budget"]
        assert "suggested_split" not in findings[-1].data


class TestNearestSoundSplit:
    def test_fix_attaches_nearest_split(self):
        # 2^2 x 2^2 against a 2^5 budget: the closest sound split
        # keeps the column width and grows the rows.
        spec = PredictorSpec(scheme="gshare", rows=4, cols=4)
        findings = verify_spec(spec, budget_bits=5, fix=True)
        (budget,) = [f for f in findings if f.check == "config.budget"]
        assert budget.data["suggested_split"] == {
            "cols": 4,
            "rows": 8,
            "point": "c=2 r=3",
        }
        assert "2^2x2^3" in budget.why

    def test_suggestion_prefers_column_distance(self):
        spec = PredictorSpec(scheme="gas", rows=2, cols=16)
        suggestion = nearest_sound_split(spec, 6)
        assert (suggestion.cols, suggestion.rows) == (16, 4)

    def test_matching_budget_needs_no_suggestion(self):
        spec = PredictorSpec(scheme="gshare", rows=8, cols=4)
        assert verify_spec(spec, budget_bits=5, fix=True) == []

    def test_fix_flows_through_spec_dicts(self):
        findings = verify_spec_dict(
            {"scheme": "gshare", "rows": 4, "cols": 4, "budget_bits": 5},
            origin="spec[0]",
            fix=True,
        )
        (budget,) = errors_of(findings)
        assert budget.check == "config.budget"
        assert budget.data["suggested_split"]["point"] == "c=2 r=3"

    def test_check_configs_threads_fix(self):
        findings = check_configs(
            spec_dicts=[
                {"scheme": "gshare", "rows": 4, "cols": 4, "budget_bits": 5}
            ],
            schemes=("gshare",),
            size_bits=(4,),
            fix=True,
        )
        budget = [f for f in findings if f.check == "config.budget"]
        assert len(budget) == 1
        assert "suggested_split" in budget[0].data

    def test_non_integer_budget_bits_is_a_contract_finding(self):
        findings = verify_spec_dict(
            {"scheme": "gshare", "rows": 4, "cols": 4, "budget_bits": "5"},
            origin="spec[0]",
        )
        assert [f.check for f in findings] == ["config.contract"]

    def test_indivisible_first_level_is_an_error(self):
        # validate() accepts this spec, but bht_miss_stream would raise
        # mid-sweep: the guard exists for exactly this case.
        spec = PredictorSpec(
            scheme="pas", rows=4, cols=4, bht_entries=1024, bht_assoc=3
        )
        findings = verify_spec(spec)
        assert any(
            f.check == "config.first-level" and f.severity == "error"
            for f in findings
        )

    def test_wide_counters_warn(self):
        spec = PredictorSpec(scheme="bimodal", cols=16, counter_bits=7)
        findings = verify_spec(spec)
        assert any(f.check == "config.counter-bits" for f in findings)

    def test_tournament_recurses_into_components(self):
        bad = PredictorSpec(
            scheme="pas", rows=4, cols=4, bht_entries=1024, bht_assoc=3
        )
        spec = PredictorSpec(
            scheme="tournament",
            component_a=PredictorSpec(scheme="bimodal", cols=16),
            component_b=bad,
            chooser_rows=16,
        )
        findings = verify_spec(spec)
        assert any(
            f.check == "config.first-level"
            and "component_b" in (f.point or "")
            for f in findings
        )


class TestVerifySpecDict:
    def test_contract_violation_becomes_finding(self):
        findings = verify_spec_dict(
            {"scheme": "gshare", "rows": 3, "cols": 4}, origin="spec[0]"
        )
        assert [f.check for f in findings] == ["config.contract"]
        assert findings[0].severity == "error"
        assert findings[0].point == "spec[0]"

    def test_unknown_field_becomes_finding(self):
        findings = verify_spec_dict(
            {"scheme": "gshare", "rowz": 4}, origin="spec[1]"
        )
        assert [f.check for f in findings] == ["config.contract"]

    def test_nested_component_dicts_materialize(self):
        findings = verify_spec_dict(
            {
                "scheme": "tournament",
                "component_a": {"scheme": "bimodal", "cols": 16},
                "component_b": {"scheme": "gshare", "rows": 4, "cols": 4},
                "chooser_rows": 16,
            },
            origin="spec[2]",
        )
        assert not errors_of(findings)


class TestSweepPlan:
    def test_default_grids_are_clean(self):
        for scheme in ("gas", "gshare", "path", "pas", "sas"):
            findings = verify_sweep_plan(scheme, range(4, 16))
            assert not errors_of(findings), scheme

    def test_bad_first_level_flags_every_pas_point(self):
        findings = verify_sweep_plan(
            "pas", [6], bht_entries=1024, bht_assoc=3
        )
        flagged = errors_of(findings)
        assert flagged
        # Every point with a first level (r >= 1) is flagged.
        assert all(f.check == "config.first-level" for f in flagged)
        assert len(flagged) == 6

    def test_full_pass_is_clean_and_counts_coverage(self):
        findings = check_configs()
        assert not errors_of(findings)
        coverage = [f for f in findings if f.check == "config.coverage"]
        assert len(coverage) == 1
        assert coverage[0].data["sweep_points"] > 0


class TestSweepGuard:
    def test_precheck_rejects_before_simulating(self):
        trace = biased_field_trace(branches=8, executions_each=4)
        with pytest.raises(ConfigurationError, match="precheck"):
            sweep_tiers(
                "pas",
                trace,
                size_bits=[4],
                bht_entries=64,
                bht_assoc=3,
            )

    def test_precheck_feeds_findings_counter(self):
        reset_metrics()
        trace = biased_field_trace(branches=8, executions_each=4)
        with pytest.raises(ConfigurationError):
            sweep_tiers(
                "pas", trace, size_bits=[4], bht_entries=64, bht_assoc=3
            )
        assert counter("check.findings").value > 0

    def test_clean_sweep_still_runs_with_precheck(self):
        trace = biased_field_trace(branches=8, executions_each=4)
        surface = sweep_tiers("gshare", trace, size_bits=[4])
        assert len(surface.tier(4)) == 5

    def test_no_precheck_skips_the_guard(self):
        # The guard off: the bad geometry is only discovered mid-sweep,
        # as a different (deeper) error.
        trace = biased_field_trace(branches=8, executions_each=4)
        with pytest.raises(Exception) as excinfo:
            sweep_tiers(
                "pas",
                trace,
                size_bits=[4],
                bht_entries=64,
                bht_assoc=3,
                precheck=False,
            )
        assert "precheck" not in str(excinfo.value)


class TestFindings:
    def test_severity_is_validated(self):
        with pytest.raises(CheckError):
            Finding(check="x", severity="fatal", why="no such level")

    def test_json_omits_unset_coordinates(self):
        finding = Finding(check="config.budget", severity="error", why="w")
        assert finding.to_json() == {
            "check": "config.budget",
            "severity": "error",
            "why": "w",
        }

    def test_report_exit_codes(self):
        report = CheckReport()
        report.extend(
            "configs",
            [Finding(check="c", severity="warning", why="w")],
        )
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1
        report.extend(
            "code", [Finding(check="c", severity="error", why="w")]
        )
        assert report.exit_code(strict=False) == 1


class TestSpecFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(
            json.dumps([{"scheme": "gshare", "rows": 4, "cols": 4}])
        )
        assert load_spec_file(str(path)) == [
            {"scheme": "gshare", "rows": 4, "cols": 4}
        ]

    def test_wrapped_form(self, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps({"specs": [{"scheme": "static"}]}))
        assert load_spec_file(str(path)) == [{"scheme": "static"}]

    def test_malformed_payload_raises_check_error(self, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(CheckError):
            load_spec_file(str(path))

    def test_missing_file_raises_check_error(self, tmp_path):
        with pytest.raises(CheckError):
            load_spec_file(str(tmp_path / "absent.json"))
