"""Checkpoint-key stability: golden digests + the lint rule pinning them.

``sweep_key`` is the identity of every resumable sweep journal. Two
independent guards keep it stable:

* golden-key fixtures — known ``(scheme, fingerprint, options) -> key``
  tuples hard-coded here; any change to the digest inputs or the
  serialization breaks them;
* the ``code.checkpoint-key`` lint rule — fires on *source* edits to
  the function (parameter tuple, payload dict keys, ``sort_keys``)
  even before a behavioral test runs.

A deliberate key-format break must update both, which is the point.
"""

import textwrap

from repro.check.lint import (
    SWEEP_KEY_PARAMS,
    SWEEP_KEY_PAYLOAD_KEYS,
    lint_paths,
    lint_source,
)
from repro.runtime.checkpoint import sweep_key

#: Known-good digests. If one of these fails, the checkpoint key format
#: changed and every existing sweep journal is orphaned — only proceed
#: if that is the intent, and update the goldens in the same commit.
GOLDEN_KEYS = [
    (("gshare", "0000000000000000", (6,)), {}, "ada1aa2ac2bce9d4"),
    (("pas", "deadbeefcafe0123", (4, 6, 8)), {}, "fa34628f59ec51e6"),
    (
        ("gas", "feedface00112233", tuple(range(4, 16))),
        {},
        "91d8612215bc0867",
    ),
    (
        ("pas", "deadbeefcafe0123", (4, 6, 8)),
        {"bht_entries": 512, "bht_assoc": 4},
        "8c04d7d1696677ab",
    ),
    (
        ("gshare", "0000000000000000", (6,)),
        {"row_bits_filter": (0, 2)},
        "77635a95774a2100",
    ),
]


class TestGoldenKeys:
    def test_known_tuples_digest_identically(self):
        for args, kwargs, expected in GOLDEN_KEYS:
            assert sweep_key(*args, **kwargs) == expected, (args, kwargs)

    def test_engine_is_excluded_from_the_key(self):
        # A sweep begun vectorized may finish on the reference engine;
        # the key must not fork on the engine choice.
        base = sweep_key("pas", "deadbeefcafe0123", [4, 6, 8])
        assert (
            sweep_key(
                "pas", "deadbeefcafe0123", [4, 6, 8], engine="reference"
            )
            == base
        )

    def test_size_bits_order_is_canonicalized(self):
        assert sweep_key("gas", "feedface00112233", [8, 4, 6]) == sweep_key(
            "gas", "feedface00112233", [4, 6, 8]
        )


def lint_checkpoint(source):
    return lint_source(
        textwrap.dedent(source),
        filename="runtime/checkpoint.py",
        is_checkpoint=True,
    )


#: A minimal sweep_key that satisfies every pin.
CLEAN_SWEEP_KEY = """
    import hashlib
    import json

    def sweep_key(scheme, trace_fingerprint, size_bits, bht_entries=None,
                  bht_assoc=4, engine="auto", row_bits_filter=None):
        payload = json.dumps(
            {
                "scheme": scheme,
                "trace": trace_fingerprint,
                "size_bits": sorted(size_bits),
                "bht_entries": bht_entries,
                "bht_assoc": bht_assoc,
                "row_bits_filter": row_bits_filter,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]
    """


class TestCheckpointKeyRule:
    def test_pinned_shape_is_clean(self):
        assert lint_checkpoint(CLEAN_SWEEP_KEY) == []

    def test_parameter_reorder_fires(self):
        reordered = CLEAN_SWEEP_KEY.replace(
            "scheme, trace_fingerprint, size_bits",
            "trace_fingerprint, scheme, size_bits",
        )
        findings = lint_checkpoint(reordered)
        assert [f.check for f in findings] == ["code.checkpoint-key"]
        assert findings[0].severity == "error"
        assert str(SWEEP_KEY_PARAMS) in findings[0].why

    def test_payload_key_change_fires(self):
        renamed = CLEAN_SWEEP_KEY.replace('"trace":', '"fingerprint":')
        findings = lint_checkpoint(renamed)
        assert [f.check for f in findings] == ["code.checkpoint-key"]
        assert str(SWEEP_KEY_PAYLOAD_KEYS) in findings[0].why

    def test_extra_payload_key_fires(self):
        widened = CLEAN_SWEEP_KEY.replace(
            '"row_bits_filter": row_bits_filter,',
            '"row_bits_filter": row_bits_filter,\n'
            '                "engine": engine,',
        )
        findings = lint_checkpoint(widened)
        assert [f.check for f in findings] == ["code.checkpoint-key"]

    def test_dropping_sort_keys_fires(self):
        unsorted = CLEAN_SWEEP_KEY.replace(
            ",\n            sort_keys=True,\n        )", ",\n        )"
        )
        findings = lint_checkpoint(unsorted)
        assert [f.check for f in findings] == ["code.checkpoint-key"]
        assert "sort_keys" in findings[0].why

    def test_rule_needs_the_checkpoint_flag(self):
        # The same source in an ordinary module defines its own
        # sweep_key legitimately (e.g. a test fixture).
        reordered = CLEAN_SWEEP_KEY.replace(
            "scheme, trace_fingerprint, size_bits",
            "trace_fingerprint, scheme, size_bits",
        )
        assert (
            lint_source(
                textwrap.dedent(reordered), filename="fixture.py"
            )
            == []
        )

    def test_real_checkpoint_module_matches_the_pin(self):
        findings = [
            f
            for f in lint_paths()
            if f.check == "code.checkpoint-key"
        ]
        assert findings == [], [f.render() for f in findings]
