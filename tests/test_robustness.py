"""Cross-cutting robustness and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.traces import BranchTrace, load_trace, save_trace
from repro.workloads import build_program, generate_trace
from repro.workloads.profiles import (
    LARGE_PROGRAM_MIX,
    WorkloadProfile,
    derive_buckets,
)


@st.composite
def arbitrary_traces(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    pc = rng.integers(0, 2**30, size=n).astype(np.uint64) * 4
    taken = rng.random(n) < draw(st.floats(0.0, 1.0))
    target = rng.integers(0, 2**30, size=n).astype(np.uint64) * 4
    return BranchTrace(pc=pc, taken=taken, target=target, name="ht")


class TestTraceIoProperties:
    @given(arbitrary_traces())
    @settings(max_examples=20, deadline=None)
    def test_npz_roundtrip_exact(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("io") / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.pc, trace.pc)
        assert np.array_equal(loaded.taken, trace.taken)
        assert np.array_equal(loaded.target, trace.target)

    @given(arbitrary_traces())
    @settings(max_examples=10, deadline=None)
    def test_text_roundtrip_exact(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("io") / "t.txt"
        save_trace(trace, path)
        loaded = load_trace(str(path))
        assert np.array_equal(loaded.pc, trace.pc)
        assert np.array_equal(loaded.taken, trace.taken)


class TestLazyTopLevelApi:
    def test_lazy_exports_resolve(self):
        assert callable(repro.make_workload)
        assert callable(repro.make_predictor_spec)
        assert callable(repro.simulate)
        assert callable(repro.sweep_tiers)
        assert callable(repro.list_workloads)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.quantum_predictor

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestGeneratorRobustness:
    @given(
        st.integers(40, 800),
        st.integers(4, 200),
        st.integers(1, 6),
        st.integers(0, 2**20),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_profiles_generate_valid_traces(
        self, static, n90, phases, seed
    ):
        """Any structurally-valid profile must generate a well-formed
        trace of the exact requested length."""
        n90 = min(n90, static - 2)
        if n90 < 2:
            n90 = 2
        profile = WorkloadProfile(
            name="fuzz",
            suite="custom",
            buckets=derive_buckets(static, n90),
            branch_fraction=0.15,
            paper_static_branches=static,
            paper_branches_for_90pct=n90,
            paper_dynamic_branches=10_000,
            behavior_mix=LARGE_PROGRAM_MIX,
            num_phases=phases,
        )
        program = build_program(profile, seed=seed)
        trace = generate_trace(program, length=2_000, seed=seed)
        assert len(trace) == 2_000
        assert trace.num_static_branches <= profile.static_branches
        assert (trace.pc % 4 == 0).all()

    def test_length_one_trace(self):
        from repro.workloads import get_profile

        program = build_program(get_profile("compress"), seed=1)
        trace = generate_trace(program, length=1, seed=1)
        assert len(trace) == 1


class TestEndToEndDeterminism:
    def test_same_inputs_same_experiment_output(self):
        from repro.experiments import ExperimentOptions, run_experiment

        options = ExperimentOptions(
            length=3_000, seed=7, benchmarks=["compress"], size_bits=[4]
        )
        first = run_experiment("fig4", options)
        second = run_experiment("fig4", options)
        assert first.text == second.text

    def test_engines_stay_deterministic_across_calls(self):
        from repro.predictors import make_predictor_spec
        from repro.sim import simulate
        from repro.workloads import make_workload

        trace = make_workload("compress", length=3_000, seed=2)
        spec = make_predictor_spec("gshare", rows=256)
        a = simulate(spec, trace)
        b = simulate(spec, trace)
        assert np.array_equal(a.predictions, b.predictions)
