"""The batched tier kernel and its sweep integration.

The contract under test is the batch planner's promise: for a proven
tier, one shared trace decode plus one segmented scan over stacked
counter state is *bit-identical* to simulating every split serially —
including against the scalar reference engine, the repo's ground
truth. The sweep-level tests pin the fallback behavior (rejected tiers
quietly take the serial path) and the decode-amortization telemetry.
"""

import numpy as np
import pytest

from repro.check.batchplan import plan_tier
from repro.errors import ConfigurationError
from repro.obs.metrics import reset_metrics, snapshot
from repro.obs.profile import disable_profiling, enable_profiling
from repro.sim import sweep_tiers
from repro.sim.engine import simulate
from repro.sim.sweep import spec_for_point
from repro.sim.vectorized import simulate_batched_tier, tier_environment
from repro.workloads import make_workload
from repro.workloads.micro import interference_field_trace


@pytest.fixture(scope="module")
def trace():
    return make_workload("compress", length=4_000, seed=2)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield


def tier_specs(scheme, n, **kwargs):
    return [
        spec_for_point(
            scheme, col_bits=n - row_bits, row_bits=row_bits, **kwargs
        )
        for row_bits in range(n + 1)
    ]


class TestBatchedKernel:
    @pytest.mark.parametrize("scheme", ["gas", "gshare", "path"])
    def test_bit_identical_to_reference_engine(self, trace, scheme):
        n = 6
        specs = tier_specs(scheme, n)
        batched = simulate_batched_tier(specs, trace)
        for spec, predictions in zip(specs, batched):
            serial = simulate(spec, trace, engine="reference")
            assert np.array_equal(predictions, serial.predictions), (
                f"{scheme} {spec.size_label} diverges from reference"
            )

    def test_plan_exprs_match_derived_exprs(self, trace):
        n = 5
        specs = tier_specs("gshare", n)
        tier = plan_tier("gshare", n)
        from_plan = simulate_batched_tier(
            specs, trace, exprs=[split.expr for split in tier.splits]
        )
        derived = simulate_batched_tier(specs, trace)
        for a, b in zip(from_plan, derived):
            assert np.array_equal(a, b)

    def test_micro_trace_identity(self):
        trace = interference_field_trace(branches=8, length=1536, seed=1)
        specs = tier_specs("gas", 4)
        batched = simulate_batched_tier(specs, trace)
        for spec, predictions in zip(specs, batched):
            serial = simulate(spec, trace, engine="vectorized")
            assert np.array_equal(predictions, serial.predictions)

    def test_mixed_budget_rejected(self, trace):
        specs = [
            spec_for_point("gas", col_bits=4, row_bits=0),
            spec_for_point("gas", col_bits=4, row_bits=1),
        ]
        with pytest.raises(ConfigurationError, match="budget"):
            simulate_batched_tier(specs, trace)

    def test_batched_configs_counter(self, trace):
        specs = tier_specs("gas", 4)
        simulate_batched_tier(specs, trace)
        assert snapshot()["counters"]["sim.batched_configs"] == 5

    def test_environment_decodes_each_stream_once(self, trace):
        specs = tier_specs("gshare", 5)
        env = tier_environment(specs, trace)
        # One tier needs exactly the shared word and ghist streams.
        assert sorted(name for name, _param in env) == ["ghist", "word"]


class TestDecodeAmortization:
    def test_one_trace_decode_per_tier(self, trace):
        enable_profiling()
        try:
            simulate_batched_tier(tier_specs("gas", 5), trace)
            data = snapshot()["histograms"]
            assert data["sim.phase.trace_decode"]["count"] == 1
            assert data["sim.phase.index_stream"]["count"] == 1
        finally:
            disable_profiling()


class TestSweepIntegration:
    @pytest.mark.parametrize("scheme", ["gas", "gshare"])
    def test_batched_surface_identical_to_serial(self, trace, scheme):
        serial = sweep_tiers(scheme, trace, size_bits=[4, 6])
        batched = sweep_tiers(scheme, trace, size_bits=[4, 6], batched=True)
        for n in (4, 6):
            for a, b in zip(serial.tier(n), batched.tier(n)):
                assert a.size_label == b.size_label
                assert a.misprediction_rate == b.misprediction_rate
                assert a.first_level_miss_rate == b.first_level_miss_rate

    def test_rejected_tier_falls_back_to_serial(self, trace):
        serial = sweep_tiers("pas", trace, size_bits=[4])
        batched = sweep_tiers("pas", trace, size_bits=[4], batched=True)
        for a, b in zip(serial.tier(4), batched.tier(4)):
            assert a.misprediction_rate == b.misprediction_rate

    def test_partial_tier_falls_back_to_serial(self, trace):
        serial = sweep_tiers(
            "gas", trace, size_bits=[5], row_bits_filter=[0, 2]
        )
        batched = sweep_tiers(
            "gas",
            trace,
            size_bits=[5],
            row_bits_filter=[0, 2],
            batched=True,
        )
        for a, b in zip(serial.tier(5), batched.tier(5)):
            assert a.misprediction_rate == b.misprediction_rate

    def test_batched_accounting_matches_sweep_contract(self, trace):
        sweep_tiers("gas", trace, size_bits=[4], batched=True)
        counters = snapshot()["counters"]
        assert counters["sweep.points_computed"] == 5
        assert counters["engine.vectorized.runs"] == 5
        assert counters["sim.branches"] == 5 * len(trace)
        assert counters["sim.batched_configs"] == 5
