"""Tests for the segmented automaton scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.predictors.counters import (
    CounterBank,
    counter_init_state,
    counter_transitions,
)
from repro.sim.fsm_scan import scan_automaton, segmented_counter_predictions


def sequential_scan(transitions, inputs, segment_ids, init_state):
    """Direct per-step execution: the semantics the scan must match."""
    states = np.empty(len(inputs), dtype=np.uint8)
    current = {}
    for i, (symbol, segment) in enumerate(zip(inputs, segment_ids)):
        state = current.get(segment, init_state)
        states[i] = state
        current[segment] = transitions[symbol, state]
    return states


class TestScanAutomaton:
    def test_empty(self):
        out = scan_automaton(
            counter_transitions(2), np.array([]), np.array([]), 2
        )
        assert len(out) == 0

    def test_single_segment_counter(self):
        transitions = counter_transitions(2)
        inputs = np.array([1, 1, 0, 0, 0, 1], dtype=np.uint8)
        segments = np.zeros(6, dtype=np.int64)
        out = scan_automaton(transitions, inputs, segments, init_state=2)
        assert list(out) == [2, 3, 3, 2, 1, 0]

    def test_segments_are_independent(self):
        transitions = counter_transitions(2)
        inputs = np.array([0, 0, 1, 1], dtype=np.uint8)
        segments = np.array([0, 0, 1, 1])
        out = scan_automaton(transitions, inputs, segments, init_state=2)
        # Segment 1 restarts from the initial state.
        assert list(out) == [2, 1, 2, 3]

    def test_decreasing_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_automaton(
                counter_transitions(2),
                np.array([1, 1]),
                np.array([1, 0]),
                2,
            )

    def test_bad_init_state_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_automaton(
                counter_transitions(2), np.array([1]), np.array([0]), 9
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_automaton(
                counter_transitions(2),
                np.array([1, 0]),
                np.array([0]),
                2,
            )

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.booleans()),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sequential_execution(self, accesses, nbits):
        """Property: the log-time scan equals direct execution for any
        access pattern and counter width."""
        segments = np.array(sorted(a[0] for a in accesses))
        inputs = np.array([int(a[1]) for a in accesses], dtype=np.uint8)
        transitions = counter_transitions(nbits)
        init = counter_init_state(nbits)
        fast = scan_automaton(transitions, inputs, segments, init)
        slow = sequential_scan(transitions, inputs, segments, init)
        assert np.array_equal(fast, slow)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_four_input_automaton(self, seed):
        """The scan works for any automaton, not just counters."""
        rng = np.random.default_rng(seed)
        transitions = rng.integers(0, 5, size=(4, 5)).astype(np.uint8)
        n = int(rng.integers(1, 400))
        inputs = rng.integers(0, 4, size=n).astype(np.uint8)
        segments = np.sort(rng.integers(0, 8, size=n))
        fast = scan_automaton(transitions, inputs, segments, init_state=0)
        slow = sequential_scan(transitions, inputs, segments, 0)
        assert np.array_equal(fast, slow)


class TestSegmentedCounterPredictions:
    def test_matches_counter_bank(self):
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 16, size=500)
        taken = rng.random(500) < 0.6
        fast = segmented_counter_predictions(idx, taken)
        bank = CounterBank(16)
        slow = np.empty(500, dtype=bool)
        for i in range(500):
            slow[i] = bank.predict(int(idx[i]))
            bank.update(int(idx[i]), bool(taken[i]))
        assert np.array_equal(fast, slow)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            segmented_counter_predictions(
                np.array([0, 1]), np.array([True])
            )

    @given(st.integers(0, 2**32 - 1), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_counter_bank(self, seed, nbits):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        idx = rng.integers(0, 8, size=n)
        taken = rng.random(n) < 0.5
        fast = segmented_counter_predictions(idx, taken, counter_bits=nbits)
        bank = CounterBank(8, nbits=nbits)
        slow = np.empty(n, dtype=bool)
        for i in range(n):
            slow[i] = bank.predict(int(idx[i]))
            bank.update(int(idx[i]), bool(taken[i]))
        assert np.array_equal(fast, slow)
