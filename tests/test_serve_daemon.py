"""Serve daemon tests: the ISSUE's acceptance criteria, in-process.

The hard contracts: a served figure job renders bit-identical to the
one-shot ``repro run`` path; resubmitting it is served ~entirely from
the content-addressed result store; two different figure jobs complete
concurrently over one shared pool under one merged metrics report; and
the one-shot sweep itself memoizes finished points through the same
store (``--no-cache`` opting out).
"""

import pytest

from repro.experiments.base import ExperimentOptions
from repro.experiments.runner import run_experiment
from repro.obs import get_tracer, reset_metrics, snapshot
from repro.serve.client import (
    cancel_job,
    fetch_result,
    job_status,
    submit_job,
)
from repro.serve.daemon import ServeDaemon
from repro.serve.queue import JobQueue, ServeError
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload

#: Micro-scale job: 2^4 and 2^5 tiers -> 5 + 6 = 11 points.
MICRO = dict(
    benchmarks=("compress",), length=2_000, seed=0, size_bits=(4, 5)
)
MICRO_POINTS = 11


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    reset_metrics()
    get_tracer().reset()
    yield
    reset_metrics()
    get_tracer().close_sink()
    get_tracer().reset()


def _serve_once(queue_dir, workers=2):
    code = ServeDaemon(str(queue_dir), workers=workers, once=True).run()
    assert code == 0


class TestServeRoundTrip:
    def test_bit_identical_to_one_shot_run(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        _serve_once(tmp_path)
        payload = fetch_result(str(tmp_path), job.id)

        one_shot = run_experiment(
            "fig4",
            ExperimentOptions(
                benchmarks=MICRO["benchmarks"],
                length=MICRO["length"],
                seed=MICRO["seed"],
                size_bits=MICRO["size_bits"],
            ),
        )
        assert payload["experiment"] == one_shot.experiment_id
        assert payload["title"] == one_shot.title
        assert payload["text"] == one_shot.text

    def test_resubmission_is_served_from_cache(self, tmp_path):
        submit_job(str(tmp_path), "fig4", **MICRO)
        _serve_once(tmp_path)
        reset_metrics()
        second, attached = submit_job(str(tmp_path), "fig4", **MICRO)
        assert not attached  # first job is terminal, not deduped
        _serve_once(tmp_path)
        (row,) = job_status(str(tmp_path), second.id)
        assert row["state"] == "done"
        assert row["points"] == MICRO_POINTS
        assert row["cache_hits"] == MICRO_POINTS
        assert row["computed"] == 0
        counters = snapshot()["counters"]
        assert counters["cache.hits"] == MICRO_POINTS

    def test_two_jobs_share_one_pool_and_one_report(self, tmp_path):
        a, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        b, _ = submit_job(str(tmp_path), "fig6", **MICRO)
        _serve_once(tmp_path)

        for job_id, experiment in ((a.id, "fig4"), (b.id, "fig6")):
            (row,) = job_status(str(tmp_path), job_id)
            assert row["state"] == "done", row
            payload = fetch_result(str(tmp_path), job_id)
            assert payload["experiment"] == experiment

        # One merged metrics report covers both jobs: a single pass of
        # pool rounds computed every point of both figures.
        counters = snapshot()["counters"]
        assert counters["serve.jobs_completed"] == 2
        assert (
            counters["sweep.points_computed"] == 2 * MICRO_POINTS
        )

    def test_in_flight_resubmission_attaches(self, tmp_path):
        first, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        again, attached = submit_job(str(tmp_path), "fig4", **MICRO)
        assert attached and again.id == first.id
        _serve_once(tmp_path)
        (row,) = job_status(str(tmp_path), first.id)
        assert row["state"] == "done"
        counters = snapshot()["counters"]
        assert counters["serve.jobs_deduped"] == 1

    def test_cross_job_point_dedup(self, tmp_path):
        # Identical spec under two different experiment ids would not
        # dedup, but identical points *within* one pass must: submit
        # the same figure twice back-to-back (second attaches), then a
        # fig4 job whose points all landed in the store already.
        submit_job(str(tmp_path), "fig4", **MICRO)
        _serve_once(tmp_path)
        reset_metrics()
        # A wider job shares the (4, 5) tiers with the finished one.
        submit_job(
            str(tmp_path),
            "fig4",
            benchmarks=("compress",),
            length=2_000,
            seed=0,
            size_bits=(4, 5, 6),
        )
        _serve_once(tmp_path)
        counters = snapshot()["counters"]
        # Only the 2^6 tier (7 points) is new work.
        assert counters["cache.hits"] == MICRO_POINTS
        assert counters["sweep.points_computed"] == 7


class TestServeFailures:
    def test_unsupported_experiment_fails_cleanly(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig10", **MICRO)
        _serve_once(tmp_path)
        (row,) = job_status(str(tmp_path), job.id)
        assert row["state"] == "failed"
        assert "fig10" in row["error"]
        with pytest.raises(ServeError):
            fetch_result(str(tmp_path), job.id)
        counters = snapshot()["counters"]
        assert counters["serve.jobs_failed"] == 1

    def test_failed_job_does_not_poison_the_pass(self, tmp_path):
        bad, _ = submit_job(str(tmp_path), "fig10", **MICRO)
        good, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        _serve_once(tmp_path)
        (bad_row,) = job_status(str(tmp_path), bad.id)
        (good_row,) = job_status(str(tmp_path), good.id)
        assert bad_row["state"] == "failed"
        assert good_row["state"] == "done"

    def test_fetch_before_done_raises_with_state(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        with pytest.raises(ServeError, match="queued"):
            fetch_result(str(tmp_path), job.id)


class TestServeCancel:
    def test_cancel_before_serving(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO)
        cancel_job(str(tmp_path), job.id)
        _serve_once(tmp_path)
        (row,) = job_status(str(tmp_path), job.id)
        assert row["state"] == "cancelled"
        counters = snapshot()["counters"]
        assert counters["serve.jobs_cancelled"] == 1
        assert counters.get("sweep.points_computed", 0) == 0
        # The sidecar is consumed with the cancellation.
        assert not JobQueue(str(tmp_path)).find(job.id).cancel_requested()


class TestSweepMemoization:
    """Satellite 1: one-shot sweeps consult the result store."""

    @pytest.fixture()
    def trace(self):
        return make_workload("compress", length=2_000, seed=0)

    def test_second_sweep_is_all_cache_hits(
        self, tmp_path, trace, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        first = sweep_tiers("gas", trace, size_bits=(4, 5))
        reset_metrics()
        second = sweep_tiers("gas", trace, size_bits=(4, 5))
        assert second.tiers == first.tiers
        counters = snapshot()["counters"]
        assert counters["cache.hits"] == MICRO_POINTS
        assert counters.get("sweep.points_computed", 0) == 0

    def test_no_cache_bypasses_the_store(
        self, tmp_path, trace, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        sweep_tiers("gas", trace, size_bits=(4, 5))
        reset_metrics()
        sweep_tiers("gas", trace, size_bits=(4, 5), use_cache=False)
        counters = snapshot()["counters"]
        assert counters.get("cache.hits", 0) == 0

    def test_without_store_env_cache_is_inert(self, trace):
        surface = sweep_tiers("gas", trace, size_bits=(4,))
        counters = snapshot()["counters"]
        assert counters.get("cache.hits", 0) == 0
        assert counters.get("cache.misses", 0) == 0
        assert len(surface.tiers) == 1

    def test_store_roundtrip_preserves_floats(
        self, tmp_path, trace, monkeypatch
    ):
        direct = sweep_tiers("gas", trace, size_bits=(4, 5))
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        sweep_tiers("gas", trace, size_bits=(4, 5))
        cached = sweep_tiers("gas", trace, size_bits=(4, 5))
        for n in (4, 5):
            for mine, theirs in zip(cached.tiers[n], direct.tiers[n]):
                assert mine == theirs
