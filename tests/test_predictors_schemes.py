"""Behavioural tests for every scalar predictor scheme.

Each scheme is checked on hand-constructed branch sequences whose
correct behaviour is known from the paper's description of the scheme,
plus cross-scheme equivalences (GAs with one column == GAg, etc.).
"""

import pytest

from repro.errors import ConfigurationError
from repro.predictors import (
    AgreePredictor,
    BiModePredictor,
    BimodalPredictor,
    GApPredictor,
    GlobalHistoryPredictor,
    GsharePredictor,
    GskewPredictor,
    PathBasedPredictor,
    PerAddressPredictor,
    StaticPredictor,
    TournamentPredictor,
    build_predictor,
    make_predictor_spec,
    taxonomy_code,
)


def run(predictor, sequence):
    """Drive predictor over (pc, taken, target) triples; return
    misprediction count."""
    wrong = 0
    for pc, taken, target in sequence:
        if predictor.predict(pc, target) != taken:
            wrong += 1
        predictor.update(pc, taken, target)
    return wrong


def constant_branch(pc, taken, n, target=0x2000):
    return [(pc, taken, target)] * n


class TestStatic:
    def test_always_taken(self):
        p = StaticPredictor("taken")
        assert run(p, constant_branch(0x100, True, 10)) == 0
        assert run(p, constant_branch(0x100, False, 10)) == 10

    def test_btfn(self):
        p = StaticPredictor("btfn")
        backward = [(0x1000, True, 0x0800)] * 5  # loop: predicted taken
        forward = [(0x1000, False, 0x1800)] * 5  # skip: predicted NT
        assert run(p, backward) == 0
        assert run(p, forward) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticPredictor("backwards")

    def test_update_is_noop(self):
        p = StaticPredictor("taken")
        p.update(0x100, False)
        assert p.predict(0x100) is True


class TestBimodal:
    def test_learns_constant_branch(self):
        p = BimodalPredictor(counters=16)
        # After warmup, a constant branch never mispredicts.
        run(p, constant_branch(0x100, False, 3))
        assert run(p, constant_branch(0x100, False, 20)) == 0

    def test_hysteresis_survives_single_deviation(self):
        p = BimodalPredictor(counters=16)
        run(p, constant_branch(0x100, True, 5))
        run(p, constant_branch(0x100, False, 1))
        assert p.predict(0x100) is True

    def test_aliasing_between_distant_branches(self):
        # pcs 0x100 and 0x100 + 16*4 share a counter in a 16-entry table.
        p = BimodalPredictor(counters=16)
        run(p, constant_branch(0x100, True, 5))
        run(p, constant_branch(0x100 + 64, False, 5))
        # The second branch destroyed the first branch's state.
        assert p.predict(0x100) is False

    def test_alternating_branch_defeats_counter(self):
        p = BimodalPredictor(counters=16)
        seq = [(0x100, i % 2 == 0, 0) for i in range(40)]
        assert run(p, seq) >= 15  # ~50% on alternation

    def test_storage(self):
        assert BimodalPredictor(counters=512).storage_bits == 1024


class TestGlobalHistory:
    def test_learns_global_correlation(self):
        """Branch B equals the previous outcome of branch A: GAg with
        1+ history bits learns it; bimodal cannot."""
        seq = []
        import random

        rnd = random.Random(7)
        for _ in range(400):
            a = rnd.random() < 0.5
            seq.append((0x100, a, 0))
            seq.append((0x104, a, 0))  # perfectly correlated with A
        gag = GlobalHistoryPredictor(rows=16, cols=1)
        bimodal = BimodalPredictor(counters=16)
        gag_wrong_tail = run(gag, seq[200:]) if run(gag, seq[:200]) else 0
        gag = GlobalHistoryPredictor(rows=16, cols=1)
        run(gag, seq[:400])
        gag_tail = run(gag, seq[400:])
        run(bimodal, seq[:400])
        bimodal_tail = run(bimodal, seq[400:])
        # B instances: gag predicts them near-perfectly; bimodal ~50%.
        assert gag_tail < bimodal_tail * 0.7

    def test_gag_learns_short_loop_exit(self):
        """4-iteration loop: GAg with >= 4 history bits predicts the
        exit (the paper's all-ones-but-short pattern)."""
        seq = []
        for _ in range(100):
            seq.extend([(0x100, True, 0x80)] * 3)
            seq.append((0x100, False, 0x80))
        gag = GlobalHistoryPredictor(rows=16, cols=1)
        run(gag, seq[: len(seq) // 2])
        assert run(gag, seq[len(seq) // 2 :]) == 0

    def test_single_column_is_gag(self):
        assert GlobalHistoryPredictor(rows=8, cols=1).scheme == "gag"
        assert GlobalHistoryPredictor(rows=8, cols=2).scheme == "gas"

    def test_columns_separate_branches(self):
        """Two opposite constant branches observed under identical
        history contexts: a single column forces them onto one counter,
        address columns separate them."""
        seq = []
        for _ in range(100):
            seq.append((0x200, True, 0))  # context setter: always taken
            seq.append((0x100, True, 0))
            seq.append((0x200, True, 0))
            seq.append((0x104, False, 0))
        # rows=2 -> 1 history bit, which is always 1 (the 0x200 outcome)
        # before both 0x100 and 0x104: identical rows, conflicting
        # outcomes in one column.
        one_col = GlobalHistoryPredictor(rows=2, cols=1)
        two_col = GlobalHistoryPredictor(rows=2, cols=2)
        wrong_one = run(one_col, seq)
        wrong_two = run(two_col, seq)
        assert wrong_two < wrong_one / 2

    def test_storage(self):
        p = GlobalHistoryPredictor(rows=64, cols=4)
        assert p.storage_bits == 64 * 4 * 2 + 6


class TestGAp:
    def test_private_columns_never_alias(self):
        p = GApPredictor(rows=4)
        seq = []
        for _ in range(50):
            seq.append((0x100, True, 0))
            seq.append((0x100 + 4 * 1024, False, 0))  # same low bits
        run(p, seq)
        tail = [(0x100, True, 0), (0x100 + 4 * 1024, False, 0)] * 10
        assert run(p, tail) == 0

    def test_storage_grows_with_branches(self):
        p = GApPredictor(rows=4)
        run(p, [(0x100, True, 0), (0x200, True, 0)])
        assert p.storage_bits == 2 * 4 * 2 + 2


class TestGshare:
    def test_xor_separates_aliased_patterns(self):
        """Two branches with identical histories but different
        addresses: gshare maps them to different rows."""
        p = GsharePredictor(rows=64, cols=1)
        seq = []
        for _ in range(100):
            seq.append((0x100, True, 0))
            seq.append((0x1F0, False, 0))
        run(p, seq[:100])
        assert run(p, seq[100:]) <= 2

    def test_matches_paper_shape_conventions(self):
        p = GsharePredictor(rows=8, cols=4)
        assert p.rows == 8 and p.cols == 4

    def test_storage(self):
        assert GsharePredictor(rows=1024, cols=1).storage_bits == 2048 + 10


class TestPath:
    def test_distinguishes_paths_to_same_branch(self):
        """Branch C's outcome depends on which of two blocks preceded
        it; direction history cannot tell (both predecessors 'taken')
        but their target addresses differ."""
        seq = []
        import random

        rnd = random.Random(3)
        for _ in range(300):
            via_a = rnd.random() < 0.5
            # The two intermediate blocks differ in the low word-address
            # bits of their entry points (0x30C vs 0x310), which is what
            # the path register records.
            if via_a:
                seq.append((0x100, True, 0x30C))
                seq.append((0x30C, True, 0x500))
            else:
                seq.append((0x100, True, 0x310))
                seq.append((0x310, True, 0x500))
            seq.append((0x500, via_a, 0x600))
        p = PathBasedPredictor(rows=64, cols=1, bits_per_target=3)
        run(p, seq[: len(seq) // 2])
        tail_wrong = run(p, seq[len(seq) // 2 :])
        assert tail_wrong <= len(seq) // 2 * 0.1

    def test_bits_per_target_bounded(self):
        with pytest.raises(ValueError):
            PathBasedPredictor(rows=4, cols=1, bits_per_target=3)


class TestPerAddress:
    def test_learns_per_branch_pattern(self):
        """Period-3 pattern: PAs with 3+ history bits nails it; the
        pattern is invisible to a single counter."""
        pattern = [True, True, False]
        seq = [(0x100, pattern[i % 3], 0) for i in range(300)]
        p = PerAddressPredictor(rows=8, cols=1)
        run(p, seq[:150])
        assert run(p, seq[150:]) == 0

    def test_histories_do_not_interfere_when_perfect(self):
        seq = []
        for i in range(200):
            seq.append((0x100, i % 2 == 0, 0))
            seq.append((0x200, i % 2 == 1, 0))
        p = PerAddressPredictor(rows=4, cols=1)
        run(p, seq[:200])
        assert run(p, seq[200:]) == 0

    def test_finite_bht_conflicts_hurt(self):
        """Alternating pattern with BHT thrashing: conflicts reset the
        history and mispredictions persist."""
        seq = []
        for i in range(400):
            # Three branches in the same direct-mapped set of a 2-entry
            # table: every access misses.
            for pc in (0x100, 0x108, 0x110):
                seq.append((pc, i % 2 == 0, 0))
        perfect = PerAddressPredictor(rows=16, cols=1)
        finite = PerAddressPredictor(rows=16, cols=1, bht_entries=2, bht_assoc=1)
        run(perfect, seq[:600])
        run(finite, seq[:600])
        assert run(PerAddressPredictor(rows=16, cols=1), seq) < run(
            PerAddressPredictor(rows=16, cols=1, bht_entries=2, bht_assoc=1),
            seq,
        )

    def test_first_level_miss_rate_exposed(self):
        p = PerAddressPredictor(rows=4, cols=1, bht_entries=2, bht_assoc=1)
        run(p, [(0x100, True, 0)] * 10)
        assert p.first_level_miss_rate == pytest.approx(0.1)

    def test_single_column_is_pag(self):
        assert PerAddressPredictor(rows=8, cols=1).scheme == "pag"
        assert PerAddressPredictor(rows=8, cols=4).scheme == "pas"


class TestTournament:
    def test_chooser_learns_better_component(self):
        """Alternating branch: the PAs component is perfect, the static
        not-taken component is 50%; the tournament converges to PAs."""
        seq = [(0x100, i % 2 == 0, 0) for i in range(400)]
        p = TournamentPredictor(
            component_a=StaticPredictor("not_taken"),
            component_b=PerAddressPredictor(rows=8, cols=1),
            chooser_rows=16,
        )
        run(p, seq[:200])
        assert run(p, seq[200:]) <= 2

    def test_storage_sums_components(self):
        p = TournamentPredictor(
            component_a=BimodalPredictor(counters=16),
            component_b=GsharePredictor(rows=16, cols=1),
            chooser_rows=16,
        )
        assert p.storage_bits == 32 + (32 + 4) + 32


class TestDealiased:
    def test_agree_tolerates_aliasing_of_like_biased_branches(self):
        """Two opposite-biased branches forced onto one gshare counter:
        plain gshare thrashes, agree does not (each agrees with its own
        bias bit)."""
        seq = []
        for _ in range(200):
            seq.append((0x100, True, 0))
            seq.append((0x1F0, False, 0))
        # rows=1 degenerates every index to a single shared counter:
        # total second-level aliasing, the worst case for gshare and
        # exactly the case agree neutralizes.
        agree = AgreePredictor(rows=1, bias_entries=1024)
        gshare = GsharePredictor(rows=1, cols=1)
        wrong_agree = run(agree, seq)
        wrong_gshare = run(gshare, seq)
        assert wrong_agree < wrong_gshare

    def test_bimode_separates_opposite_biases(self):
        seq = []
        for _ in range(200):
            seq.append((0x100, True, 0))
            seq.append((0x1F0, False, 0))
        bimode = BiModePredictor(rows=1, choice_rows=1024)
        gshare = GsharePredictor(rows=1, cols=1)
        assert run(bimode, seq) < run(gshare, seq)

    def test_gskew_majority_recovers_single_bank_conflict(self):
        seq = []
        for _ in range(300):
            seq.append((0x100, True, 0))
            seq.append((0x1F0, False, 0))
        gskew = GskewPredictor(rows=16)
        gshare = GsharePredictor(rows=16, cols=1)
        assert run(gskew, seq) <= run(gshare, seq)

    def test_reset_restores_initial(self):
        for predictor in (
            AgreePredictor(rows=8),
            BiModePredictor(rows=8),
            GskewPredictor(rows=8),
        ):
            before = predictor.predict(0x100)
            predictor.update(0x100, not before)
            predictor.update(0x100, not before)
            predictor.reset()
            assert predictor.predict(0x100) == before


class TestFactoryAndTaxonomy:
    @pytest.mark.parametrize(
        "scheme,kwargs,expected_type",
        [
            ("static", {"static_policy": "btfn"}, StaticPredictor),
            ("bimodal", {"cols": 64}, BimodalPredictor),
            ("gag", {"rows": 64}, GlobalHistoryPredictor),
            ("gas", {"rows": 16, "cols": 4}, GlobalHistoryPredictor),
            ("gap", {"rows": 16}, GApPredictor),
            ("gshare", {"rows": 64, "cols": 2}, GsharePredictor),
            ("path", {"rows": 64, "cols": 2}, PathBasedPredictor),
            ("pag", {"rows": 16}, PerAddressPredictor),
            ("pas", {"rows": 16, "cols": 4}, PerAddressPredictor),
            ("agree", {"rows": 64}, AgreePredictor),
            ("bimode", {"rows": 64}, BiModePredictor),
            ("gskew", {"rows": 64}, GskewPredictor),
        ],
    )
    def test_factory_builds_every_scheme(self, scheme, kwargs, expected_type):
        spec = make_predictor_spec(scheme, **kwargs)
        assert isinstance(build_predictor(spec), expected_type)

    def test_factory_tournament(self):
        spec = make_predictor_spec(
            "tournament",
            component_a=make_predictor_spec("bimodal", cols=64),
            component_b=make_predictor_spec("gshare", rows=64),
            chooser_rows=64,
        )
        assert isinstance(build_predictor(spec), TournamentPredictor)

    def test_taxonomy_codes(self):
        assert taxonomy_code("gas", rows=8, cols=4) == "GAs"
        assert taxonomy_code("gas", rows=8, cols=1) == "GAg"
        assert taxonomy_code("pas", rows=8, cols=4) == "PAs"
        assert taxonomy_code("pap") == "PAp"
        assert taxonomy_code("bimodal") == "address-indexed"

    def test_taxonomy_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            taxonomy_code("oracle")
