"""Content-addressed result store tests (see :mod:`repro.serve.results`).

The store is a sibling of the trace store with the same discipline:
CRC-stamped artifacts, corrupt-is-a-miss reads, LRU eviction — plus a
combined ``gc_stores`` budget shared with the trace store.
"""

import json
import os

import pytest

from repro.obs import reset_metrics, snapshot
from repro.serve.results import ResultStore, gc_stores, point_key
from repro.sim.results import TierPoint
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


def _point(rate=0.123456789012345):
    return TierPoint(
        col_bits=3,
        row_bits=2,
        misprediction_rate=rate,
        aliasing_rate=0.01,
        first_level_miss_rate=None,
    )


class TestPointKey:
    def test_deterministic(self):
        a = point_key("gas", "fp0", 5, 2)
        assert a == point_key("gas", "fp0", 5, 2)

    def test_sensitive_to_every_input(self):
        base = point_key("gas", "fp0", 5, 2)
        assert point_key("gshare", "fp0", 5, 2) != base
        assert point_key("gas", "fp1", 5, 2) != base
        assert point_key("gas", "fp0", 6, 2) != base
        assert point_key("gas", "fp0", 5, 3) != base
        assert point_key("gas", "fp0", 5, 2, bht_entries=128) != base

    def test_engine_never_in_the_key(self):
        # Both engines are bit-identical, so the key must not depend
        # on which one computed the point. point_key delegates to
        # sweep_key, whose digest deliberately excludes the engine.
        from repro.runtime.checkpoint import sweep_key

        assert sweep_key(
            "gas", "fp0", [5], engine="vector"
        ) == sweep_key("gas", "fp0", [5], engine="reference")


class TestResultStore:
    def test_roundtrip_exact_floats(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        point = _point(rate=1.0 / 3.0)
        store.put(key, 5, point)
        got = store.get(key)
        assert got == point
        assert got.misprediction_rate == point.misprediction_rate

    def test_get_counts_hits_and_misses(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        assert store.get(key) is None
        store.put(key, 5, _point())
        assert store.get(key) is not None
        counters = snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1

    def test_peek_is_silent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        store.put(key, 5, _point())
        assert store.peek(key) is not None
        assert store.peek("0" * 16) is None
        counters = snapshot()["counters"]
        assert counters.get("cache.hits", 0) == 0
        assert counters.get("cache.misses", 0) == 0

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        path = store.put(key, 5, _point())
        payload = json.loads(open(path, encoding="ascii").read())
        payload["point"]["misprediction_rate"] = 0.999  # CRC now stale
        with open(path, "w", encoding="ascii") as handle:
            handle.write(json.dumps(payload))
        assert store.get(key) is None

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        path = store.put(key, 5, _point())
        with open(path, "w", encoding="ascii") as handle:
            handle.write('{"schema": "repro.resu')
        assert store.get(key) is None

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 5, 2)
        store.put(key, 5, _point())
        store.put(key, 5, _point())
        assert len(store.stored_files()) == 1

    def test_ls_and_total_bytes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for row_bits in range(3):
            store.put(point_key("gas", "fp0", 5, row_bits), 5, _point())
        rows = store.ls()
        assert len(rows) == 3
        assert store.total_bytes() == sum(r["bytes"] for r in rows)

    def test_gc_evicts_lru_first(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = [point_key("gas", "fp0", 5, r) for r in range(3)]
        paths = [store.put(k, 5, _point()) for k in keys]
        # Make the first artifact the oldest, then touch it via get()
        # so eviction order follows use, not creation.
        for index, path in enumerate(paths):
            os.utime(path, (1000 + index, 1000 + index))
        store.get(keys[0])
        survivor_budget = store.total_bytes() - 1
        store.gc(survivor_budget)
        remaining = store.stored_files()
        assert len(remaining) == 2
        assert store.peek(keys[0]) is not None  # recently used survives
        assert store.peek(keys[1]) is None  # LRU evicted

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert ResultStore.from_env() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        store = ResultStore.from_env()
        assert store is not None and store.directory == str(tmp_path)


class TestGcStores:
    def test_combined_budget_spans_both_stores(self, tmp_path):
        from repro.workloads.registry import make_workload

        traces = TraceStore(str(tmp_path / "traces"))
        results = ResultStore(str(tmp_path / "results"))
        traces.put(make_workload("compress", length=500, seed=0))
        for row_bits in range(4):
            results.put(
                point_key("gas", "fp0", 5, row_bits), 5, _point()
            )
        total = traces.total_bytes() + results.total_bytes()
        removed = gc_stores([traces, results], total // 2)
        assert removed
        combined = traces.total_bytes() + results.total_bytes()
        assert combined <= total // 2
