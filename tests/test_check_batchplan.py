"""The static batchability planner: golden plan fixtures, prover
verdicts, artifact integrity, and the check-pass/CLI integration.

The golden fixtures under ``tests/data/batchplan/`` pin the full JSON
artifact (verdicts, transform classes, rendered index functions, and
the content key) for the three figure schemes at a small and a
Figure-4-scale budget. A diff here means the planner's *proofs*
changed — review it like a checkpoint-key change, not a formatting
nit.
"""

import json
import os

import pytest

from repro.check.batchplan import (
    DEFAULT_PLAN_BITS,
    FIGURE_SCHEMES,
    build_batchplan,
    check_batchplan,
    load_plan,
    plan_tier,
    tier_scheme,
    verify_tier_plan,
)
from repro.check.runner import run_checks
from repro.cli import main
from repro.errors import CheckError
from repro.obs.metrics import reset_metrics, snapshot

FIXTURE_DIR = os.path.join(
    os.path.dirname(__file__), "data", "batchplan"
)

#: scheme -> build_batchplan kwargs matching the committed fixtures.
GOLDEN = {
    "gas": {},
    "gshare": {},
    "pas": {"bht_entries": 64},
}


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield


class TestGoldenPlans:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN))
    def test_plan_matches_committed_fixture(self, scheme):
        with open(os.path.join(FIXTURE_DIR, f"{scheme}.json")) as handle:
            golden = json.load(handle)
        plan = build_batchplan(scheme, (6, 10), **GOLDEN[scheme])
        assert plan.to_json() == golden, (
            f"the {scheme} batch plan changed; if the prover change is "
            "deliberate, regenerate tests/data/batchplan/"
        )

    @pytest.mark.parametrize("scheme", sorted(GOLDEN))
    def test_fixture_loads_and_verifies(self, scheme):
        with open(os.path.join(FIXTURE_DIR, f"{scheme}.json")) as handle:
            plan = load_plan(json.load(handle))
        assert plan.scheme == scheme
        assert plan.size_bits == (6, 10)


class TestProver:
    def test_global_tier_is_stackable_one_class(self):
        for scheme in ("gas", "gshare", "path"):
            tier = plan_tier(scheme, 6)
            assert tier.shareable and tier.stackable
            assert tier.num_classes == 1
            assert tier.rejections == ()
            assert len(tier.splits) == 7
            assert tier_scheme(tier) == scheme

    def test_pas_rejected_for_unshareable_lhist(self):
        tier = plan_tier("pas", 4)
        assert not tier.shareable
        assert not tier.stackable
        assert any("lhist" in reason for reason in tier.rejections)

    def test_pas_with_bht_rejected_for_mixed_geometry(self):
        tier = plan_tier("pas", 4, bht_entries=64, bht_assoc=4)
        assert not tier.stackable
        assert any(
            "mixed first-level geometry" in reason
            for reason in tier.rejections
        )

    def test_rejected_tier_still_plans_every_split(self):
        tier = plan_tier("pas", 4)
        assert len(tier.splits) == 5
        # Per-width local-history params keep the non-degenerate
        # splits in separate transform classes.
        assert tier.num_classes == 4

    def test_verification_is_exact_on_micros(self):
        tier = plan_tier("gas", 5)
        assert verify_tier_plan(tier) == []

    def test_verification_covers_first_level_geometry(self):
        tier = plan_tier("pas", 4, bht_entries=64, bht_assoc=4)
        assert (
            verify_tier_plan(tier, bht_entries=64, bht_assoc=4) == []
        )

    def test_unknown_micro_is_an_error(self):
        tier = plan_tier("gas", 4)
        with pytest.raises(CheckError, match="unknown verification"):
            verify_tier_plan(tier, micros=["nope"])

    def test_bad_scheme_and_bad_exponent(self):
        with pytest.raises(CheckError):
            plan_tier("bimodal", 4)
        with pytest.raises(CheckError):
            plan_tier("gas", 0)


class TestArtifact:
    def test_roundtrip_preserves_plan_and_key(self):
        plan = build_batchplan("gshare", (4,))
        back = load_plan(plan.to_json())
        assert back == plan
        assert back.key == plan.key

    def test_tampered_plan_is_refused(self):
        data = build_batchplan("gas", (4,)).to_json()
        data["counter_bits"] = 3  # edit without re-keying
        with pytest.raises(CheckError, match="content key mismatch"):
            load_plan(data)

    def test_wrong_format_is_refused(self):
        with pytest.raises(CheckError, match="not a repro.batchplan/1"):
            load_plan({"format": "something-else"})

    def test_key_is_content_addressed(self):
        assert (
            build_batchplan("gas", (4,)).key
            == build_batchplan("gas", (4,)).key
        )
        assert (
            build_batchplan("gas", (4,)).key
            != build_batchplan("gshare", (4,)).key
        )


class TestCheckPass:
    def test_proven_tier_reports_info(self):
        findings = check_batchplan(schemes=["gas"], size_bits=[4])
        tiers = [f for f in findings if f.check == "batchplan.tier"]
        assert len(tiers) == 1
        assert tiers[0].severity == "info"
        assert tiers[0].data["classes"] == 1

    def test_rejected_tier_reports_warning(self):
        findings = check_batchplan(schemes=["pas"], size_bits=[4])
        tiers = [f for f in findings if f.check == "batchplan.tier"]
        assert [f.severity for f in tiers] == ["warning"]
        assert tiers[0].data["rejections"]

    def test_figure_selects_the_scheme(self):
        findings = check_batchplan(figure="fig4", size_bits=[4])
        assert {f.scheme for f in findings if f.scheme} == {
            FIGURE_SCHEMES["fig4"]
        }

    def test_figure_and_scheme_conflict(self):
        with pytest.raises(CheckError, match="not both"):
            check_batchplan(schemes=["gas"], figure="fig4")

    def test_metrics_predeclared_and_fed(self):
        check_batchplan(schemes=["gas", "pas"], size_bits=[4])
        counters = snapshot()["counters"]
        assert counters["check.batchplan.classes"] == 1
        assert counters["check.batchplan.rejected"] == 1

    def test_plan_out_writes_loadable_artifact(self, tmp_path):
        out = tmp_path / "plan.json"
        check_batchplan(
            schemes=["gas"], size_bits=[4], plan_out=str(out)
        )
        plan = load_plan(json.loads(out.read_text()))
        assert plan.scheme == "gas"
        assert plan.size_bits == (4,)

    def test_plan_out_multi_scheme_envelope(self, tmp_path):
        out = tmp_path / "plans.json"
        check_batchplan(
            schemes=["gas", "gshare"],
            size_bits=[4],
            plan_out=str(out),
        )
        data = json.loads(out.read_text())
        assert [p["scheme"] for p in data["plans"]] == ["gas", "gshare"]
        for payload in data["plans"]:
            load_plan(payload)

    def test_default_bits_are_the_declared_defaults(self):
        findings = check_batchplan(schemes=["gas"])
        points = [
            f.point for f in findings if f.check == "batchplan.tier"
        ]
        assert points == [f"2^{n}" for n in DEFAULT_PLAN_BITS]


class TestRunnerIntegration:
    def test_named_pass_runs(self):
        report = run_checks(
            "batchplan", schemes=["gas"], size_bits=[4]
        )
        assert report.passes == ["batchplan"]
        assert report.count("error") == 0

    def test_all_excludes_batchplan_by_default(self):
        report = run_checks("all", size_bits=[4])
        assert "batchplan" not in report.passes

    def test_all_with_batchplan_includes_it(self):
        report = run_checks(
            "all",
            schemes=["gas"],
            size_bits=[4],
            with_batchplan=True,
        )
        assert "batchplan" in report.passes


class TestCli:
    def test_figure_tier_exit_zero(self, capsys):
        code = main(
            ["check", "batchplan", "--figure", "fig4", "--tier", "4"]
        )
        assert code == 0
        assert "batchplan" in capsys.readouterr().out

    def test_rejection_blocks_only_strict(self, capsys):
        argv = ["check", "batchplan", "--scheme", "pas", "--tier", "4"]
        assert main(argv) == 0
        assert main(argv + ["--strict"]) == 1
        capsys.readouterr()

    def test_json_report_carries_plan_key(self, capsys, tmp_path):
        out = tmp_path / "plan.json"
        code = main(
            [
                "check",
                "batchplan",
                "--scheme",
                "gas",
                "--tier",
                "4",
                "--json",
                "--plan-out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        tier = next(
            f
            for f in report["findings"]
            if f["check"] == "batchplan.tier"
        )
        assert tier["data"]["key"] == json.loads(out.read_text())["key"]
