"""Tests for the oracle predictors and micro-workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError, WorkloadError
from repro.predictors.oracle import (
    ORACLE_KINDS,
    information_bounds,
    oracle_predictions,
    oracle_result,
)
from repro.workloads.micro import (
    aliasing_pair_trace,
    alternating_trace,
    biased_field_trace,
    correlated_pair_trace,
    loop_trace,
    pattern_trace,
)


class TestMicroWorkloads:
    def test_loop_trace_shape(self):
        trace = loop_trace(trips=4, repeats=3)
        assert len(trace) == 12
        assert list(trace.taken[:4]) == [True, True, True, False]
        assert trace.num_static_branches == 1

    def test_loop_validation(self):
        with pytest.raises(WorkloadError):
            loop_trace(trips=1, repeats=3)

    def test_alternating(self):
        trace = alternating_trace(6)
        assert list(trace.taken) == [True, False] * 3

    def test_correlated_pair_pure(self):
        trace = correlated_pair_trace(100, noise=0.0, seed=1)
        a = trace.taken[0::2]
        b = trace.taken[1::2]
        assert np.array_equal(a, b)
        assert trace.num_static_branches == 2

    def test_correlated_pair_noise(self):
        trace = correlated_pair_trace(10_000, noise=0.3, seed=1)
        a = trace.taken[0::2]
        b = trace.taken[1::2]
        disagree = float(np.mean(a != b))
        assert abs(disagree - 0.3) < 0.03

    def test_aliasing_pair_strides(self):
        trace = aliasing_pair_trace(10, stride_counters=16)
        assert int(trace.pc[1]) - int(trace.pc[0]) == 64

    def test_pattern_trace(self):
        trace = pattern_trace([True, False, False], repeats=2)
        assert list(trace.taken) == [True, False, False] * 2

    def test_biased_field(self):
        trace = biased_field_trace(branches=5, executions_each=100,
                                   taken_probability=1.0)
        assert trace.num_static_branches == 5
        assert trace.taken.all()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: alternating_trace(1),
            lambda: correlated_pair_trace(1),
            lambda: aliasing_pair_trace(1),
            lambda: pattern_trace([True], 2),
            lambda: biased_field_trace(0, 1),
        ],
    )
    def test_validation(self, factory):
        with pytest.raises(WorkloadError):
            factory()


class TestOracles:
    def test_prophet_is_perfect(self):
        trace = alternating_trace(50)
        assert np.array_equal(
            oracle_predictions("prophet", trace), trace.taken
        )

    def test_majority_oracle_on_biased_branch(self):
        trace = biased_field_trace(3, 200, taken_probability=0.9, seed=2)
        predictions = oracle_predictions("majority", trace)
        miss = float(np.mean(predictions != trace.taken))
        # Majority direction misses exactly the minority instances.
        assert abs(miss - (1 - trace.taken_rate)) < 0.02

    def test_majority_oracle_useless_on_alternation(self):
        trace = alternating_trace(100)
        predictions = oracle_predictions("majority", trace)
        assert float(np.mean(predictions != trace.taken)) == pytest.approx(
            0.5
        )

    def test_self_pattern_oracle_nails_patterns(self):
        trace = pattern_trace([True, True, False, False], repeats=100)
        predictions = oracle_predictions("self_pattern", trace,
                                         history_bits=4)
        tail = slice(8, None)  # skip the reset-prefix warmup
        assert np.array_equal(
            predictions[tail], trace.taken[tail]
        )

    def test_global_oracle_nails_correlation(self):
        trace = correlated_pair_trace(2_000, noise=0.0, seed=3)
        predictions = oracle_predictions("global_pattern", trace,
                                         history_bits=2)
        b_instances = slice(1, None, 2)
        miss = float(
            np.mean(predictions[b_instances] != trace.taken[b_instances])
        )
        assert miss < 0.02

    def test_information_bounds_ordering(self):
        """prophet <= pattern oracles <= majority, by construction."""
        from repro.workloads import make_workload

        trace = make_workload("espresso", length=8_000, seed=5)
        bounds = information_bounds(trace, history_bits=8)
        assert bounds["prophet"] == 0.0
        assert bounds["global_pattern"] <= bounds["majority"] + 1e-9
        assert bounds["self_pattern"] <= bounds["majority"] + 1e-9
        assert set(bounds) == set(ORACLE_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            oracle_predictions("clairvoyant", alternating_trace(10))

    def test_empty_trace_rejected(self):
        from repro.traces import BranchTrace

        with pytest.raises(TraceError):
            oracle_predictions("majority", BranchTrace.from_records([]))

    def test_oracle_result_wrapper(self):
        trace = alternating_trace(20)
        result = oracle_result("prophet", trace)
        assert result.misprediction_rate == 0.0
        assert result.engine == "oracle:prophet"
