"""Vectorized engines must match the scalar reference engine exactly.

These are the load-bearing tests of the whole benchmark harness: every
figure is regenerated with the vectorized engines, and these tests
guarantee those engines implement precisely the semantics of the
(obviously-correct) scalar predictors — prediction by prediction, on
both synthetic random traces and calibrated workload traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import make_predictor_spec
from repro.sim import simulate, simulate_reference, simulate_vectorized
from repro.sim.vectorized import bht_miss_stream, has_vectorized_engine
from repro.traces import BranchTrace
from repro.workloads import make_workload


def random_trace(seed, length=600, npcs=12):
    rng = np.random.default_rng(seed)
    pc = (0x1000 + rng.integers(0, npcs, size=length) * 4).astype(np.uint64)
    taken = rng.random(length) < rng.uniform(0.3, 0.8)
    target = ((pc * np.uint64(2654435761)) & np.uint64(0xFFFFFC)) + np.uint64(
        0x10000
    )
    return BranchTrace(pc=pc, taken=taken, target=target, name=f"rand{seed}")


SPECS = [
    make_predictor_spec("static", static_policy="btfn"),
    make_predictor_spec("bimodal", cols=8),
    make_predictor_spec("gag", rows=16),
    make_predictor_spec("gas", rows=8, cols=4),
    make_predictor_spec("gshare", rows=16, cols=2),
    make_predictor_spec("path", rows=16, cols=2),
    make_predictor_spec("gap", rows=8),
    make_predictor_spec("pag", rows=8),
    make_predictor_spec("pas", rows=8, cols=4),
    make_predictor_spec("pas", rows=8, cols=2, bht_entries=4, bht_assoc=2),
    make_predictor_spec("pag", rows=16, bht_entries=8, bht_assoc=1),
    make_predictor_spec("pap", rows=8),
    make_predictor_spec("agree", rows=16),
    make_predictor_spec("gskew", rows=16),
    make_predictor_spec(
        "tournament",
        component_a=make_predictor_spec("bimodal", cols=8),
        component_b=make_predictor_spec("gshare", rows=16),
        chooser_rows=8,
    ),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "spec", SPECS, ids=[s.describe() for s in SPECS]
    )
    def test_exact_match_on_random_trace(self, spec):
        trace = random_trace(11)
        fast = simulate_vectorized(spec, trace)
        slow = simulate_reference(spec, trace)
        mismatches = np.flatnonzero(fast.predictions != slow.predictions)
        assert mismatches.size == 0, (
            f"first mismatch at access {mismatches[:5]}"
        )
        if slow.first_level_miss_rate is not None:
            assert fast.first_level_miss_rate == pytest.approx(
                slow.first_level_miss_rate
            )

    @pytest.mark.parametrize(
        "spec", SPECS, ids=[s.describe() for s in SPECS]
    )
    def test_exact_match_on_workload_trace(self, spec):
        trace = make_workload("espresso", length=3_000, seed=5)
        fast = simulate_vectorized(spec, trace)
        slow = simulate_reference(spec, trace)
        assert np.array_equal(fast.predictions, slow.predictions)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_property_gshare_and_pas_match(self, seed):
        trace = random_trace(seed, length=400, npcs=9)
        for spec in (
            make_predictor_spec("gshare", rows=8, cols=2),
            make_predictor_spec("pas", rows=4, cols=2, bht_entries=4,
                                bht_assoc=2),
        ):
            fast = simulate_vectorized(spec, trace)
            slow = simulate_reference(spec, trace)
            assert np.array_equal(fast.predictions, slow.predictions)

    def test_bimode_falls_back_to_reference(self):
        spec = make_predictor_spec("bimode", rows=16)
        assert not has_vectorized_engine(spec)
        trace = random_trace(3)
        result = simulate(spec, trace)
        assert result.engine == "reference"

    def test_auto_prefers_vectorized(self):
        spec = make_predictor_spec("gshare", rows=16)
        result = simulate(spec, random_trace(3))
        assert result.engine == "vectorized"


class TestBhtMissStream:
    def test_matches_scalar_table(self):
        from repro.predictors.bht import BranchHistoryTable

        trace = random_trace(21, length=500, npcs=20)
        fast = bht_miss_stream(trace, entries=8, assoc=2)
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        slow = np.empty(len(trace), dtype=bool)
        for i, (pc, taken, _) in enumerate(trace):
            _, hit = table.lookup(pc)
            slow[i] = not hit
            table.record(pc, taken)
        assert np.array_equal(fast, slow)

    def test_cache_returns_same_array(self):
        trace = random_trace(22)
        a = bht_miss_stream(trace, entries=8, assoc=2)
        b = bht_miss_stream(trace, entries=8, assoc=2)
        assert a is b

    def test_geometry_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            bht_miss_stream(random_trace(1), entries=8, assoc=3)
