"""CLI tests."""

import pytest

from repro.cli import EXIT_ERROR, EXIT_INTERRUPT, main
from repro.runtime import clear_faults, install_faults


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()


class TestListing:
    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table3" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out and "ibs-ultrix" in out


class TestRun:
    def test_run_table2(self, capsys):
        code = main(
            ["run", "table2", "--length", "4000", "--benchmark", "espresso"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "espresso" in out

    def test_run_fig2_with_sizes(self, capsys):
        code = main(
            [
                "run", "fig2", "--length", "3000",
                "--benchmark", "compress", "--sizes", "4", "6",
            ]
        )
        assert code == 0
        assert "2^6" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99", "--length", "1000"]) == EXIT_ERROR
        assert "unknown experiment" in capsys.readouterr().err


class TestCharacterize:
    def test_characterize(self, capsys):
        code = main(["characterize", "compress", "--length", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "static branches" in out
        assert "50/40/9/1" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["characterize", "doom", "--length", "100"]) == EXIT_ERROR


class TestSimulate:
    def test_simulate_gshare(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "gshare", "--rows", "64",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "mispredict=" in capsys.readouterr().out

    def test_simulate_pas_reports_l1(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "pas", "--rows", "16",
                "--cols", "4", "--bht-entries", "128",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "L1-miss=" in capsys.readouterr().out

    def test_bad_spec_errors(self, capsys):
        code = main(
            ["simulate", "--scheme", "gag", "--rows", "12",
             "--length", "100"]
        )
        assert code == EXIT_ERROR

    def test_error_is_one_line_without_traceback(self, capsys):
        assert main(["run", "fig99", "--length", "100"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestResilience:
    RUN = ["run", "fig4", "--length", "2000",
           "--benchmark", "compress", "--sizes", "4"]

    def test_interrupt_exits_130_and_flushes_journal(self, tmp_path, capsys):
        install_faults("sweep.point:interrupt@3")
        code = main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
        assert code == EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err
        journals = list(tmp_path.glob("*.journal"))
        assert len(journals) == 1
        # Two points completed before the injected Ctrl-C.
        assert sum(
            1 for line in journals[0].read_text().splitlines()
            if '"point"' in line
        ) == 2

    def test_interrupted_run_resumes_to_identical_output(
        self, tmp_path, capsys
    ):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        install_faults("sweep.point:interrupt@3")
        assert (
            main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
            == EXIT_INTERRUPT
        )
        clear_faults()
        capsys.readouterr()
        assert main(self.RUN + ["--checkpoint-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == baseline

    def test_no_resume_discards_journal(self, tmp_path, capsys):
        install_faults("sweep.point:interrupt@3")
        main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
        clear_faults()
        code = main(
            self.RUN + ["--checkpoint-dir", str(tmp_path), "--no-resume"]
        )
        assert code == 0

    def test_paranoid_run_succeeds(self, capsys):
        assert main(self.RUN + ["--paranoid"]) == 0
        assert "2^4" in capsys.readouterr().out

    def test_engine_fault_degrades_instead_of_dying(self, capsys):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        install_faults("engine.vectorized:raise")
        assert main(self.RUN) == 0
        assert capsys.readouterr().out == baseline
