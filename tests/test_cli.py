"""CLI tests."""

import pytest

from repro.cli import main


class TestListing:
    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table3" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out and "ibs-ultrix" in out


class TestRun:
    def test_run_table2(self, capsys):
        code = main(
            ["run", "table2", "--length", "4000", "--benchmark", "espresso"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "espresso" in out

    def test_run_fig2_with_sizes(self, capsys):
        code = main(
            [
                "run", "fig2", "--length", "3000",
                "--benchmark", "compress", "--sizes", "4", "6",
            ]
        )
        assert code == 0
        assert "2^6" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99", "--length", "1000"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestCharacterize:
    def test_characterize(self, capsys):
        code = main(["characterize", "compress", "--length", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "static branches" in out
        assert "50/40/9/1" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["characterize", "doom", "--length", "100"]) == 1


class TestSimulate:
    def test_simulate_gshare(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "gshare", "--rows", "64",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "mispredict=" in capsys.readouterr().out

    def test_simulate_pas_reports_l1(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "pas", "--rows", "16",
                "--cols", "4", "--bht-entries", "128",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "L1-miss=" in capsys.readouterr().out

    def test_bad_spec_errors(self, capsys):
        code = main(
            ["simulate", "--scheme", "gag", "--rows", "12",
             "--length", "100"]
        )
        assert code == 1
