"""CLI tests."""

import pytest

from repro.cli import EXIT_ERROR, EXIT_INTERRUPT, main
from repro.runtime import clear_faults, install_faults


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()


class TestListing:
    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table3" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out and "ibs-ultrix" in out

    def test_workloads_lists_real_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "real_quicksort" in out
        assert "real_wordcount" in out
        # The real rows show the suite marker, not profile statistics.
        real_line = next(
            line for line in out.splitlines()
            if line.startswith("real_quicksort")
        )
        assert "real" in real_line
        assert "90%-cover" not in real_line


class TestRun:
    def test_run_table2(self, capsys):
        code = main(
            ["run", "table2", "--length", "4000", "--benchmark", "espresso"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "espresso" in out

    def test_run_fig2_with_sizes(self, capsys):
        code = main(
            [
                "run", "fig2", "--length", "3000",
                "--benchmark", "compress", "--sizes", "4", "6",
            ]
        )
        assert code == 0
        assert "2^6" in capsys.readouterr().out

    def test_run_accepts_real_benchmark(self, capsys):
        code = main(
            ["run", "fig2", "--length", "3000",
             "--benchmark", "real_quicksort", "--sizes", "4"]
        )
        assert code == 0
        assert "real_quicksort" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99", "--length", "1000"]) == EXIT_ERROR
        assert "unknown experiment" in capsys.readouterr().err


class TestCharacterize:
    def test_characterize(self, capsys):
        code = main(["characterize", "compress", "--length", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "static branches" in out
        assert "50/40/9/1" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["characterize", "doom", "--length", "100"]) == EXIT_ERROR


class TestSimulate:
    def test_simulate_gshare(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "gshare", "--rows", "64",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "mispredict=" in capsys.readouterr().out

    def test_simulate_pas_reports_l1(self, capsys):
        code = main(
            [
                "simulate", "--scheme", "pas", "--rows", "16",
                "--cols", "4", "--bht-entries", "128",
                "--benchmark", "compress", "--length", "3000",
            ]
        )
        assert code == 0
        assert "L1-miss=" in capsys.readouterr().out

    def test_bad_spec_errors(self, capsys):
        code = main(
            ["simulate", "--scheme", "gag", "--rows", "12",
             "--length", "100"]
        )
        assert code == EXIT_ERROR

    def test_error_is_one_line_without_traceback(self, capsys):
        assert main(["run", "fig99", "--length", "100"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestAnalyze:
    def test_predictability_renders_table_and_findings(self, capsys):
        code = main(
            ["analyze", "predictability", "real_collatz",
             "--length", "3000", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "predictability of real_collatz" in out
        assert "predict.summary" in out
        assert "repro check [analyze.predictability]" in out

    def test_predictability_works_on_synthetic_workloads(self, capsys):
        code = main(
            ["analyze", "predictability", "compress", "--length", "3000"]
        )
        assert code == 0
        assert "predictability of compress" in capsys.readouterr().out

    def test_predictability_json_payload(self, capsys):
        import json

        code = main(
            ["analyze", "predictability", "real_wordcount",
             "--length", "3000", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == "real_wordcount"
        assert payload["branches"]
        assert payload["findings"][0]["check"] == "predict.summary"
        for branch in payload["branches"]:
            assert branch["class"] in ("biased", "correlated", "hard")

    def test_predictability_strict_fails_on_hard_branches(self, capsys):
        # real_wordcount's interior branches are near-coin-flip under
        # short history: strict mode must surface them as blocking.
        code = main(
            ["analyze", "predictability", "real_wordcount",
             "--length", "8000", "--history-bits", "2", "--strict"]
        )
        out = capsys.readouterr().out
        if "predict.hard-branch" in out:
            assert code == 1
        else:  # pragma: no cover - distribution shifted
            assert code == 0

    def test_predictability_history_bits_validated(self, capsys):
        code = main(
            ["analyze", "predictability", "real_collatz",
             "--length", "1000", "--history-bits", "40"]
        )
        assert code == EXIT_ERROR

    def test_unknown_benchmark_errors(self, capsys):
        code = main(
            ["analyze", "predictability", "doom", "--length", "100"]
        )
        assert code == EXIT_ERROR

    def test_cfg_on_real_workload(self, capsys):
        assert main(["analyze", "cfg", "real_collatz"]) == 0
        out = capsys.readouterr().out
        assert "collatz_steps" in out
        assert "blocks=" in out and "reducible=" in out
        assert "back-edge" in out or "loop-exit" in out

    def test_cfg_on_module_qualname(self, capsys):
        assert main(["analyze", "cfg", "json:dumps"]) == 0
        out = capsys.readouterr().out
        assert "dumps" in out and "guard" in out

    def test_cfg_json_output(self, capsys):
        import json

        assert main(["analyze", "cfg", "real_binsearch", "--json"]) == 0
        summaries = json.loads(capsys.readouterr().out)
        assert summaries
        for summary in summaries:
            assert summary["blocks"] >= 1
            for branch in summary["branches"]:
                assert branch["class"] in (
                    "back-edge", "loop-exit", "guard"
                )

    def test_cfg_rejects_non_functions(self, capsys):
        assert main(["analyze", "cfg", "json:__name__"]) == EXIT_ERROR
        assert main(["analyze", "cfg", "nonesuch"]) == EXIT_ERROR
        assert (
            main(["analyze", "cfg", "nonesuch_module:f"]) == EXIT_ERROR
        )


class TestResilience:
    RUN = ["run", "fig4", "--length", "2000",
           "--benchmark", "compress", "--sizes", "4"]

    def test_interrupt_exits_130_and_flushes_journal(self, tmp_path, capsys):
        install_faults("sweep.point:interrupt@3")
        code = main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
        assert code == EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err
        journals = list(tmp_path.glob("*.journal"))
        assert len(journals) == 1
        # Two points completed before the injected Ctrl-C.
        assert sum(
            1 for line in journals[0].read_text().splitlines()
            if '"point"' in line
        ) == 2

    def test_interrupted_run_resumes_to_identical_output(
        self, tmp_path, capsys
    ):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        install_faults("sweep.point:interrupt@3")
        assert (
            main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
            == EXIT_INTERRUPT
        )
        clear_faults()
        capsys.readouterr()
        assert main(self.RUN + ["--checkpoint-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == baseline

    def test_no_resume_discards_journal(self, tmp_path, capsys):
        install_faults("sweep.point:interrupt@3")
        main(self.RUN + ["--checkpoint-dir", str(tmp_path)])
        clear_faults()
        code = main(
            self.RUN + ["--checkpoint-dir", str(tmp_path), "--no-resume"]
        )
        assert code == 0

    def test_paranoid_run_succeeds(self, capsys):
        assert main(self.RUN + ["--paranoid"]) == 0
        assert "2^4" in capsys.readouterr().out

    def test_engine_fault_degrades_instead_of_dying(self, capsys):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        install_faults("engine.vectorized:raise")
        assert main(self.RUN) == 0
        assert capsys.readouterr().out == baseline
