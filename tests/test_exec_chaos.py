"""Chaos-harness tests: seeded scenario drawing and invariant checking.

The full matrix runs in CI (``repro chaos --seed 6 --scenarios 8``);
here we pin the deterministic scenario stream, run a small slice of
real scenarios end to end, and verify the harness actually *fails*
when an invariant breaks (a chaos harness that cannot fail tests
nothing).
"""

import os

import pytest

from repro.cli import main
from repro.exec.chaos import (
    ChaosReport,
    ScenarioResult,
    draw_scenarios,
    run_chaos,
)
from repro.obs import reset_metrics, snapshot
from repro.runtime import clear_faults, parse_fault_spec


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_LEASE_TTL_S", raising=False)
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    clear_faults()
    reset_metrics()
    yield
    clear_faults()
    reset_metrics()


class TestScenarioDrawing:
    def test_deterministic_per_seed(self):
        first = draw_scenarios(6, 8)
        again = draw_scenarios(6, 8)
        assert [
            (s.name, s.fault_spec, s.backend, s.lease_ttl_s)
            for s in first
        ] == [
            (s.name, s.fault_spec, s.backend, s.lease_ttl_s)
            for s in again
        ]
        other = draw_scenarios(7, 8)
        assert [s.fault_spec for s in first] != [
            s.fault_spec for s in other
        ]

    def test_every_spec_parses(self):
        for scenario in draw_scenarios(0, 24):
            plan = parse_fault_spec(scenario.fault_spec)
            assert plan.clauses

    def test_catalog_cycles_without_repeats_per_pass(self):
        drawn = draw_scenarios(3, 12)
        assert len({s.name for s in drawn}) == 12  # one full catalog
        assert [s.index for s in drawn] == list(range(12))


class TestChaosRun:
    def test_small_matrix_holds_invariants(self):
        before = snapshot()["counters"]["chaos.scenarios"]
        report = run_chaos(
            seed=6, scenarios=2, workers=2, length=1_000, size_bits=(4,)
        )
        assert report.ok
        assert len(report.results) == 2
        assert all(r.duration_s >= 0 for r in report.results)
        assert (
            snapshot()["counters"]["chaos.scenarios"] == before + 2
        )
        rendered = report.render()
        assert "2/2 scenario(s) held the invariants -> PASS" in rendered

    def test_environment_restored_after_run(self):
        run_chaos(seed=1, scenarios=1, workers=2, length=800, size_bits=(4,))
        assert "REPRO_FAULT_SPEC" not in os.environ
        assert "REPRO_EXEC_BACKEND" not in os.environ
        assert "REPRO_LEASE_TTL_S" not in os.environ

    def test_divergence_is_reported_as_failure(self, monkeypatch):
        # Sabotage the baseline comparison: if the harness cannot flag
        # a divergence, every other assertion here is theater.
        import repro.exec.chaos as chaos_mod

        real_cells = chaos_mod._surface_cells
        calls = {"n": 0}

        def lying_cells(surface):
            calls["n"] += 1
            cells = real_cells(surface)
            if calls["n"] > 1:  # leave the baseline intact
                cells = cells[:-1]
            return cells

        monkeypatch.setattr(chaos_mod, "_surface_cells", lying_cells)
        before = snapshot()["counters"]["chaos.failures"]
        report = run_chaos(
            seed=2, scenarios=1, workers=2, length=800, size_bits=(4,)
        )
        assert not report.ok
        assert "diverged" in report.results[0].detail
        assert snapshot()["counters"]["chaos.failures"] == before + 1
        assert "FAIL" in report.render()

    def test_report_ok_requires_results(self):
        assert not ChaosReport(seed=0, workers=2, scheme="gshare").ok


class TestChaosCli:
    def test_cli_small_matrix(self, capsys):
        code = main(
            [
                "chaos",
                "--seed",
                "6",
                "--scenarios",
                "2",
                "--length",
                "1000",
                "--sizes",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_progress_flag_streams_scenarios(self, capsys):
        code = main(
            [
                "chaos",
                "--seed",
                "6",
                "--scenarios",
                "1",
                "--length",
                "800",
                "--sizes",
                "4",
                "--progress",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[chaos 1/1]" in captured.err


def test_scenario_result_shape():
    scenario = draw_scenarios(0, 1)[0]
    result = ScenarioResult(scenario=scenario, ok=True, duration_s=0.5)
    assert result.fence_rejections == 0
    assert result.detail == ""
