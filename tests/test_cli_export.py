"""CLI export-option tests."""

import csv

from repro.cli import EXIT_ERROR, main


class TestRunExport:
    def test_export_surface(self, tmp_path, capsys):
        out = tmp_path / "fig4.csv"
        code = main(
            [
                "run", "fig4", "--length", "3000",
                "--benchmark", "compress", "--sizes", "4",
                "--export", str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# compress")
        assert "misprediction_rate" in text

    def test_export_series(self, tmp_path, capsys):
        out = tmp_path / "fig2.csv"
        code = main(
            [
                "run", "fig2", "--length", "3000",
                "--benchmark", "compress", "--sizes", "4", "5",
                "--export", str(out),
            ]
        )
        assert code == 0
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["name", "x", "rate"]
        assert len(rows) == 3

    def test_export_grid(self, tmp_path, capsys):
        out = tmp_path / "fig7.csv"
        code = main(
            [
                "run", "fig7", "--length", "3000", "--sizes", "4",
                "--export", str(out),
            ]
        )
        assert code == 0
        assert "difference_points" in out.read_text()

    def test_export_unsupported_errors(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        code = main(
            [
                "run", "table1", "--length", "2000",
                "--benchmark", "compress", "--export", str(out),
            ]
        )
        assert code == EXIT_ERROR
        assert "no CSV-exportable" in capsys.readouterr().err
