"""Fleet-dashboard tests: throttling, stragglers, rendering, wiring."""

import io

import pytest

from repro.obs import get_tracer, reset_metrics, snapshot
from repro.obs.dashboard import FleetDashboard
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload


@pytest.fixture(autouse=True)
def _clean_telemetry():
    reset_metrics()
    get_tracer().reset()
    yield
    get_tracer().reset()
    reset_metrics()


class _Tty(io.StringIO):
    def isatty(self):
        return True


def make_dashboard(stream=None, **kwargs):
    clock = {"now": 0.0}
    kwargs.setdefault("min_interval_s", 0.0)
    dash = FleetDashboard(
        "test x2",
        stream=stream if stream is not None else io.StringIO(),
        clock=lambda: clock["now"],
        **kwargs,
    )
    return dash, clock


class TestThrottling:
    def test_first_frame_always_due(self):
        dash, _ = make_dashboard(min_interval_s=10.0)
        assert dash.due()

    def test_frames_throttled_by_interval(self):
        stream = io.StringIO()
        dash, clock = make_dashboard(stream, min_interval_s=5.0)
        dash.update({0: {"points": 1, "shards": 1}})
        clock["now"] = 1.0
        dash.update({0: {"points": 2, "shards": 1}})  # suppressed
        clock["now"] = 6.0
        dash.update({0: {"points": 3, "shards": 1}})
        frames = stream.getvalue().count("[test x2]")
        assert frames == 2


class TestStragglerDetection:
    def test_stalled_worker_flagged_after_warmup(self):
        dash, clock = make_dashboard(min_samples=4)
        # Both workers land a point per second for four ticks.
        for tick in range(1, 5):
            clock["now"] = float(tick)
            dash.update(
                {0: {"points": tick, "shards": 1},
                 1: {"points": tick, "shards": 1}}
            )
        assert dash.fleet_p90() is not None
        assert dash.stragglers() == []
        # Worker 1 stalls while worker 0 keeps landing points.
        for tick in range(5, 12):
            clock["now"] = float(tick)
            dash.update(
                {0: {"points": tick, "shards": 1},
                 1: {"points": 4, "shards": 1}}
            )
        assert dash.stragglers() == [1]
        assert snapshot()["counters"]["exec.stragglers"] == 1
        frame = dash.render_frame()
        assert "straggler" in frame and "ok" in frame

    def test_counter_fires_once_per_transition(self):
        dash, clock = make_dashboard(min_samples=2)
        for tick in range(1, 4):
            clock["now"] = float(tick)
            dash.update(
                {0: {"points": tick, "shards": 1},
                 1: {"points": tick, "shards": 1}}
            )
        for tick in range(4, 20):  # long stall, many polls
            clock["now"] = float(tick)
            dash.update(
                {0: {"points": tick, "shards": 1},
                 1: {"points": 3, "shards": 1}}
            )
        assert snapshot()["counters"]["exec.stragglers"] == 1

    def test_no_flags_before_min_samples(self):
        dash, clock = make_dashboard(min_samples=50)
        for tick in range(1, 10):
            clock["now"] = float(tick)
            dash.update({0: {"points": tick, "shards": 1}})
        assert dash.fleet_p90() is None
        assert dash.stragglers() == []


class TestRendering:
    def test_waiting_message_without_workers(self):
        dash, _ = make_dashboard()
        assert "(waiting for worker journals)" in dash.render_frame()

    def test_frame_contents(self):
        dash, clock = make_dashboard()
        clock["now"] = 1.0
        dash.update(
            {0: {"points": 3, "shards": 2}},
            done=3, total=10, fence_rejections=1, shards_total=4,
        )
        frame = dash.render_frame(
            done=3, total=10, fence_rejections=1, shards_total=4
        )
        assert "3/10 points" in frame
        assert "4 shard(s)" in frame
        assert "1 fence rejection(s)" in frame
        assert "w0000" in frame

    def test_non_tty_frames_are_plain_text(self):
        stream = io.StringIO()
        dash, clock = make_dashboard(stream)
        dash.update({0: {"points": 1, "shards": 1}})
        clock["now"] = 1.0
        dash.update({0: {"points": 2, "shards": 1}})
        dash.finish()
        out = stream.getvalue()
        assert "\x1b[" not in out
        assert "\n\n" in out  # frames separated by a blank line

    def test_tty_frames_rewrite_in_place(self):
        stream = _Tty()
        dash, clock = make_dashboard(stream)
        dash.update({0: {"points": 1, "shards": 1}})
        assert "\x1b[" not in stream.getvalue()  # nothing to overwrite yet
        clock["now"] = 1.0
        dash.update({0: {"points": 2, "shards": 1}})
        out = stream.getvalue()
        assert "\x1b[" in out and "\x1b[0J" in out
        dash.finish()
        assert stream.getvalue().endswith("\n")


class TestParallelIntegration:
    def test_dashboard_run_bit_identical_to_serial(self, capsys):
        trace = make_workload("compress", length=4000, seed=0)
        serial = sweep_tiers("gas", trace, size_bits=[4])
        reset_metrics()
        get_tracer().reset()
        fleet = sweep_tiers(
            "gas", trace, size_bits=[4], workers=2, dashboard=True
        )
        assert serial.tiers == fleet.tiers
        err = capsys.readouterr().err
        assert "fleet:" in err
        assert "\x1b[" not in err  # captured stderr is not a tty
