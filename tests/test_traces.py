"""Tests for the trace container, I/O, and characterization statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces import (
    BranchTrace,
    TraceBuilder,
    characterize,
    coverage_count,
    frequency_breakdown,
    load_trace,
    per_branch_counts,
    per_branch_taken_rates,
    save_trace,
)


def make_trace(records, name="t"):
    return BranchTrace.from_records(records, name=name)


@pytest.fixture
def skewed_trace():
    # Branch 0x1000 executes 90 times (all taken), 0x2000 9 times,
    # 0x3000 once.
    records = (
        [(0x1000, True)] * 90 + [(0x2000, False)] * 9 + [(0x3000, True)]
    )
    return make_trace(records)


class TestBranchTrace:
    def test_length_and_iteration(self):
        trace = make_trace([(0x100, True), (0x104, False)])
        assert len(trace) == 2
        rows = list(trace)
        assert rows[0][0] == 0x100 and rows[0][1] is True
        # Targets are static per site: both instances of a pc share one.
        again = make_trace([(0x104, True)])
        assert rows[1][2] == list(again)[0][2]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            BranchTrace(
                pc=np.zeros(2, dtype=np.uint64),
                taken=np.zeros(3, dtype=bool),
                target=np.zeros(2, dtype=np.uint64),
            )

    def test_multidimensional_rejected(self):
        with pytest.raises(TraceError):
            BranchTrace(
                pc=np.zeros((2, 2), dtype=np.uint64),
                taken=np.zeros((2, 2), dtype=bool),
                target=np.zeros((2, 2), dtype=np.uint64),
            )

    def test_static_branch_count(self, skewed_trace):
        assert skewed_trace.num_static_branches == 3

    def test_taken_rate(self, skewed_trace):
        assert skewed_trace.taken_rate == pytest.approx(91 / 100)

    def test_taken_rate_empty_rejected(self):
        with pytest.raises(TraceError):
            make_trace([]).taken_rate

    def test_word_index_drops_byte_offset(self):
        trace = make_trace([(0x100, True)])
        assert int(trace.word_index()[0]) == 0x100 >> 2

    def test_slice(self, skewed_trace):
        sub = skewed_trace.slice(0, 90)
        assert len(sub) == 90
        assert sub.num_static_branches == 1

    def test_concat(self):
        a = make_trace([(0x100, True)])
        b = make_trace([(0x200, False)])
        both = a.concat(b)
        assert len(both) == 2
        assert both.num_static_branches == 2

    def test_dtype_coercion(self):
        trace = BranchTrace(
            pc=np.array([4, 8], dtype=np.int64),
            taken=np.array([1, 0], dtype=np.int8),
            target=np.array([8, 12], dtype=np.int64),
        )
        assert trace.pc.dtype == np.uint64
        assert trace.taken.dtype == bool


class TestTraceBuilder:
    def test_append_and_build(self):
        builder = TraceBuilder(name="built")
        builder.append(0x100, True, 0x200)
        builder.append(0x104, False, 0x108)
        trace = builder.build(instruction_count=10)
        assert len(trace) == 2
        assert trace.name == "built"
        assert trace.instruction_count == 10

    def test_extend_arrays(self):
        builder = TraceBuilder()
        builder.extend(
            np.array([4, 8]), np.array([True, False]), np.array([16, 12])
        )
        assert len(builder) == 2

    def test_extend_rejects_ragged(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.extend(np.array([4]), np.array([True, False]), np.array([8]))

    def test_empty_build(self):
        assert len(TraceBuilder().build()) == 0


class TestIO:
    def test_npz_roundtrip(self, tmp_path, skewed_trace):
        path = tmp_path / "trace.npz"
        save_trace(skewed_trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.pc, skewed_trace.pc)
        assert np.array_equal(loaded.taken, skewed_trace.taken)
        assert np.array_equal(loaded.target, skewed_trace.target)
        assert loaded.name == skewed_trace.name

    def test_npz_extension_added_and_reported(self, tmp_path, skewed_trace):
        path = tmp_path / "trace"
        written = save_trace(skewed_trace, path)
        assert written == str(tmp_path / "trace.npz")
        assert (tmp_path / "trace.npz").exists()
        load_trace(written)  # the returned path is directly loadable

    def test_save_returns_exact_path_when_extension_given(
        self, tmp_path, skewed_trace
    ):
        for name in ("t.npz", "t.txt"):
            path = tmp_path / name
            assert save_trace(skewed_trace, path) == str(path)

    def test_save_leaves_no_temp_files(self, tmp_path, skewed_trace):
        save_trace(skewed_trace, tmp_path / "a.npz")
        save_trace(skewed_trace, tmp_path / "b.txt")
        assert not list(tmp_path.glob("*.tmp"))

    def test_mismatched_lengths_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            pc=np.zeros(3, dtype=np.uint64),
            taken=np.zeros(2, dtype=bool),
            target=np.zeros(3, dtype=np.uint64),
        )
        with pytest.raises(TraceError, match="mismatched array lengths"):
            load_trace(path)

    def test_text_roundtrip(self, tmp_path, skewed_trace):
        path = tmp_path / "trace.txt"
        save_trace(skewed_trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.pc, skewed_trace.pc)
        assert np.array_equal(loaded.taken, skewed_trace.taken)

    def test_text_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0x100 1\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_text_bad_number_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0x100 yes 0x104\n")
        with pytest.raises(TraceError):
            load_trace(str(path))


class TestPerBranchStats:
    def test_counts_sorted_descending(self, skewed_trace):
        pcs, counts = per_branch_counts(skewed_trace)
        assert list(counts) == [90, 9, 1]
        assert int(pcs[0]) == 0x1000

    def test_counts_empty_rejected(self):
        with pytest.raises(TraceError):
            per_branch_counts(make_trace([]))

    def test_taken_rates(self, skewed_trace):
        rates = per_branch_taken_rates(skewed_trace)
        assert rates[0x1000] == 1.0
        assert rates[0x2000] == 0.0


class TestCoverage:
    def test_single_branch_covers_everything(self):
        trace = make_trace([(0x100, True)] * 10)
        assert coverage_count(trace, 0.90) == 1

    def test_skewed_coverage(self, skewed_trace):
        # 90 of 100 instances come from the hottest branch.
        assert coverage_count(skewed_trace, 0.90) == 1
        assert coverage_count(skewed_trace, 0.95) == 2
        assert coverage_count(skewed_trace, 1.00) == 3

    def test_invalid_share_rejected(self, skewed_trace):
        with pytest.raises(TraceError):
            coverage_count(skewed_trace, 0.0)

    @given(st.integers(min_value=1, max_value=30))
    def test_uniform_coverage(self, nbranches):
        # With equal counts, covering share s needs ceil(s * n) branches.
        records = [(0x100 + 4 * i, True) for i in range(nbranches)] * 4
        trace = make_trace(records)
        assert coverage_count(trace, 0.5) == -(-nbranches // 2)


class TestFrequencyBreakdown:
    def test_buckets_partition_static_branches(self, skewed_trace):
        breakdown = frequency_breakdown(skewed_trace)
        assert sum(breakdown.branch_counts) == breakdown.total_static == 3

    def test_skewed_buckets(self, skewed_trace):
        breakdown = frequency_breakdown(skewed_trace)
        # Hottest branch alone covers the first 50% (and more).
        assert breakdown.branch_counts[0] == 1

    def test_shares_must_sum_to_one(self, skewed_trace):
        with pytest.raises(TraceError):
            frequency_breakdown(skewed_trace, shares=[0.5, 0.4])

    def test_fractions_sum_to_one(self, skewed_trace):
        fractions = frequency_breakdown(skewed_trace).fractions()
        assert sum(fractions) == pytest.approx(1.0)


class TestCharacterize:
    def test_basic_fields(self, skewed_trace):
        stats = characterize(skewed_trace)
        assert stats.dynamic_branches == 100
        assert stats.static_branches == 3
        assert stats.branches_for_90pct == 1
        # All three branches are 100%/0% biased.
        assert stats.highly_biased_fraction == 1.0

    def test_instruction_count_used_when_present(self):
        trace = BranchTrace(
            pc=np.array([4, 4], dtype=np.uint64),
            taken=np.array([True, True]),
            target=np.array([8, 8], dtype=np.uint64),
            instruction_count=20,
        )
        stats = characterize(trace)
        assert stats.dynamic_instructions == 20
        assert stats.branch_fraction == pytest.approx(0.1)

    def test_bias_threshold_respected(self):
        # 60% taken branch is not "highly biased" at the 0.95 threshold
        # but is at 0.55.
        records = [(0x100, True)] * 6 + [(0x100, False)] * 4
        trace = make_trace(records)
        assert characterize(trace, 0.95).highly_biased_fraction == 0.0
        assert characterize(trace, 0.55).highly_biased_fraction == 1.0
