"""Integrity-doctor and trace-store-hygiene tests.

``repro doctor`` must detect (and with ``--repair`` fix) every way the
on-disk state can rot: torn journal tails, corrupt entries mid-file,
zombie lines with superseded fencing tokens, unloadable trace archives
and fingerprint mismatches. ``repro store ls/gc/verify`` keep the trace
cache bounded and honest.
"""

import json
import os

import pytest

from repro.check.doctor import (
    run_doctor,
    scan_checkpoint_dir,
    scan_journal,
    scan_queue,
    scan_result_store,
    scan_store,
)
from repro.cli import main
from repro.errors import CheckError
from repro.obs import reset_metrics, snapshot
from repro.runtime import clear_faults
from repro.runtime.checkpoint import CheckpointJournal, quarantine_path
from repro.sim.results import TierPoint
from repro.traces.io import save_trace
from repro.workloads.registry import make_workload
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    clear_faults()
    reset_metrics()
    yield
    clear_faults()
    reset_metrics()


@pytest.fixture(scope="module")
def trace():
    return make_workload("compress", length=500, seed=4)


def _point(row_bits):
    return TierPoint(
        col_bits=4 - row_bits,
        row_bits=row_bits,
        misprediction_rate=0.1 + row_bits / 100.0,
        first_level_miss_rate=None,
    )


def _journal(path, n_points=3, token=None, shard=None):
    journal = CheckpointJournal.open(str(path), "doctor-key", resume=False)
    for row_bits in range(n_points):
        journal.append(4, _point(row_bits), token=token, shard=shard)
    return journal


def checks_of(findings):
    return [f.check for f in findings]


class TestScanJournal:
    def test_healthy_journal_is_ok(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _journal(path)
        findings = scan_journal(str(path))
        assert checks_of(findings) == ["doctor.journal-ok"]
        assert "3 completed" in findings[0].why

    def test_missing_and_empty(self, tmp_path):
        assert checks_of(scan_journal(str(tmp_path / "nope.journal"))) == [
            "doctor.journal-missing"
        ]
        empty = tmp_path / "empty.journal"
        empty.write_text("")
        assert checks_of(scan_journal(str(empty))) == [
            "doctor.journal-empty"
        ]

    def test_key_mismatch_is_warning(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _journal(path)
        findings = scan_journal(str(path), key="other-key")
        assert checks_of(findings) == ["doctor.journal-key"]
        assert findings[0].severity == "warning"

    def test_torn_tail_is_warning_mid_file_is_error(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _journal(path)
        lines = path.read_text().splitlines()
        # Torn tail: truncate the last line.
        path.write_text("\n".join(lines[:-1] + [lines[-1][:10]]) + "\n")
        findings = scan_journal(str(path))
        assert any(
            f.check == "doctor.journal-line" and f.severity == "warning"
            for f in findings
        )
        # Mid-file corruption: mangle an interior line.
        lines[2] = lines[2][:-4] + "beef"
        path.write_text("\n".join(lines) + "\n")
        findings = scan_journal(str(path))
        assert any(
            f.check == "doctor.journal-line" and f.severity == "error"
            for f in findings
        )

    def test_superseded_token_is_error(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = CheckpointJournal.open(
            str(path), "doctor-key", resume=False
        )
        journal.append(4, _point(0), token=2, shard=0)
        journal.append(4, _point(1), token=1, shard=0)  # zombie line
        journal.append(4, _point(2), token=2, shard=0)
        findings = scan_journal(str(path))
        fence = [f for f in findings if f.check == "doctor.journal-fence"]
        assert len(fence) == 1 and fence[0].severity == "error"
        assert "superseded" in fence[0].why

    def test_repair_truncates_and_quarantines(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _journal(path)
        original = path.read_text()
        lines = original.splitlines()
        lines[2] = lines[2][:-4] + "beef"
        path.write_text("\n".join(lines) + "\n")
        before = snapshot()["counters"]["doctor.repairs"]
        findings = scan_journal(str(path), repair=True)
        assert "doctor.journal-repaired" in checks_of(findings)
        assert snapshot()["counters"]["doctor.repairs"] == before + 1
        # The original bytes survive in the sidecar; the repaired
        # journal reloads cleanly with the bad point dropped.
        sidecar = quarantine_path(str(path))
        assert os.path.exists(sidecar)
        reloaded = CheckpointJournal.open(
            str(path), "doctor-key", resume=True
        )
        assert reloaded.completed() == {(4, 0), (4, 2)}
        assert checks_of(scan_journal(str(path))) == ["doctor.journal-ok"]

    def test_repair_removes_unrecoverable_header(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _journal(path)
        content = path.read_text().splitlines()
        path.write_text("not json\n" + "\n".join(content[1:]) + "\n")
        findings = scan_journal(str(path), repair=True)
        assert "doctor.journal-header" in checks_of(findings)
        assert not os.path.exists(path)
        assert os.path.exists(quarantine_path(str(path)))

    def test_scan_checkpoint_dir(self, tmp_path):
        _journal(tmp_path / "a.journal")
        _journal(tmp_path / "b.journal")
        findings = scan_checkpoint_dir(str(tmp_path))
        assert checks_of(findings) == [
            "doctor.journal-ok",
            "doctor.journal-ok",
        ]
        assert checks_of(scan_checkpoint_dir(str(tmp_path / "void"))) == [
            "doctor.no-journals"
        ]


class TestScanStore:
    def test_healthy_store_verifies(self, tmp_path, trace):
        store = TraceStore(str(tmp_path))
        store.put(trace)
        findings = scan_store(str(tmp_path))
        assert checks_of(findings) == ["doctor.store-ok"]
        assert "1/1" in findings[0].why

    def test_corrupt_archive_detected_and_quarantined(
        self, tmp_path, trace
    ):
        store = TraceStore(str(tmp_path))
        path = store.put(trace)
        with open(path, "wb") as handle:
            handle.write(b"this is not an npz")
        findings = scan_store(str(tmp_path))
        assert "doctor.store-corrupt" in checks_of(findings)
        findings = scan_store(str(tmp_path), repair=True)
        assert "doctor.store-repaired" in checks_of(findings)
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantine")
        # A quarantined entry regenerates transparently on next use.
        assert store.put(trace) == path

    def test_fingerprint_mismatch_detected(self, tmp_path, trace):
        other = make_workload("compress", length=400, seed=9)
        wrong = os.path.join(
            str(tmp_path), f"fp-{trace.fingerprint()}.npz"
        )
        save_trace(other, wrong)
        findings = scan_store(str(tmp_path))
        assert "doctor.store-fingerprint" in checks_of(findings)
        scan_store(str(tmp_path), repair=True)
        assert not os.path.exists(wrong)

    def test_empty_store_is_fine(self, tmp_path):
        assert checks_of(scan_store(str(tmp_path))) == [
            "doctor.store-empty"
        ]


class TestRunDoctor:
    def test_requires_a_target(self):
        with pytest.raises(CheckError):
            run_doctor()

    def test_aggregates_passes(self, tmp_path, trace):
        _journal(tmp_path / "a.journal")
        store_dir = tmp_path / "store"
        TraceStore(str(store_dir)).put(trace)
        report = run_doctor(
            journals=(str(tmp_path / "a.journal"),),
            checkpoint_dir=str(tmp_path),
            store_dir=str(store_dir),
        )
        assert report.exit_code(strict=False) == 0

    def test_exit_one_on_findings(self, tmp_path):
        path = tmp_path / "bad.journal"
        _journal(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4] + "beef"
        path.write_text("\n".join(lines) + "\n")
        report = run_doctor(journals=(str(path),))
        assert report.exit_code(strict=False) == 1


class TestStoreHygiene:
    def _fill(self, tmp_path, count=3):
        store = TraceStore(str(tmp_path))
        for seed in range(count):
            store.get("compress", 300, seed=seed)
        return store

    def test_ls_reports_lru_order_and_sizes(self, tmp_path):
        store = self._fill(tmp_path)
        rows = store.ls()
        assert len(rows) == 3
        assert all(row["bytes"] > 0 for row in rows)
        used = [row["used_at"] for row in rows]
        assert used == sorted(used)
        # A load refreshes recency: the oldest entry moves to the back.
        oldest = rows[0]["path"]
        os.utime(oldest, (0, 0))
        assert store.ls()[0]["path"] == oldest
        store.get("compress", 300, seed=0)
        reordered = store.ls()
        hit = [r for r in reordered if "s0" in str(r["path"])]
        assert reordered[-1]["path"] == hit[0]["path"]

    def test_gc_evicts_lru_until_cap(self, tmp_path):
        store = self._fill(tmp_path)
        rows = store.ls()
        keep = int(rows[-1]["bytes"])
        before = snapshot()["counters"]["store.evictions"]
        evicted = store.gc(keep)
        assert evicted == [str(rows[0]["path"]), str(rows[1]["path"])]
        assert store.total_bytes() <= keep
        assert snapshot()["counters"]["store.evictions"] == before + 2
        assert store.gc(keep) == []  # already under the cap

    def test_gc_zero_empties_negative_rejected(self, tmp_path):
        store = self._fill(tmp_path, count=2)
        with pytest.raises(ValueError):
            store.gc(-1)
        assert len(store.gc(0)) == 2
        assert store.total_bytes() == 0


class TestDoctorCli:
    def test_doctor_checkpoint_dir_clean(self, tmp_path, capsys):
        _journal(tmp_path / "a.journal")
        code = main(["doctor", "--checkpoint-dir", str(tmp_path)])
        assert code == 0
        assert "doctor.journal-ok" in capsys.readouterr().out

    def test_doctor_repair_restores_journal_and_store(
        self, tmp_path, trace, capsys
    ):
        # The acceptance scenario: one corrupted journal and one
        # corrupted store artifact; `repro doctor --repair` leaves both
        # healthy on a second scan.
        journal_path = tmp_path / "sweep.journal"
        _journal(journal_path)
        lines = journal_path.read_text().splitlines()
        lines[2] = lines[2][:-4] + "beef"
        journal_path.write_text("\n".join(lines) + "\n")
        store_dir = tmp_path / "store"
        store = TraceStore(str(store_dir))
        artifact = store.put(trace)
        with open(artifact, "wb") as handle:
            handle.write(b"rot")
        code = main(
            [
                "doctor",
                "--checkpoint-dir",
                str(tmp_path),
                "--store",
                str(store_dir),
                "--repair",
            ]
        )
        capsys.readouterr()
        assert code == 1  # findings were present (and repaired)
        code = main(
            [
                "doctor",
                "--checkpoint-dir",
                str(tmp_path),
                "--store",
                str(store_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "doctor.journal-ok" in out

    def test_doctor_json_output(self, tmp_path, capsys):
        _journal(tmp_path / "a.journal")
        code = main(
            ["doctor", "--checkpoint-dir", str(tmp_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_store_cli_ls_gc_verify(self, tmp_path, capsys):
        store = TraceStore(str(tmp_path))
        for seed in range(2):
            store.get("compress", 300, seed=seed)
        assert main(["store", "ls", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "total: 2 trace(s)" in out
        assert main(["store", "verify", "--store", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "store",
                    "gc",
                    "--max-bytes",
                    "0",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 evicted" in out
        assert store.total_bytes() == 0


class TestScanResultStore:
    def _store(self, tmp_path):
        from repro.serve.results import ResultStore, point_key

        store = ResultStore(str(tmp_path))
        key = point_key("gas", "fp0", 4, 1)
        path = store.put(key, 4, _point(1))
        return store, key, path

    def test_healthy_results_verify(self, tmp_path):
        self._store(tmp_path)
        findings = scan_result_store(str(tmp_path))
        assert checks_of(findings) == ["doctor.results-ok"]
        assert "1/1" in findings[0].why

    def test_empty_results_are_fine(self, tmp_path):
        assert checks_of(scan_result_store(str(tmp_path))) == [
            "doctor.results-empty"
        ]

    def test_rotted_artifact_detected_and_quarantined(self, tmp_path):
        store, key, path = self._store(tmp_path)
        payload = json.loads(open(path, encoding="ascii").read())
        payload["point"]["misprediction_rate"] = 0.5  # stale CRC
        with open(path, "w", encoding="ascii") as handle:
            handle.write(json.dumps(payload))
        findings = scan_result_store(str(tmp_path))
        assert "doctor.results-corrupt" in checks_of(findings)
        findings = scan_result_store(str(tmp_path), repair=True)
        assert "doctor.results-repaired" in checks_of(findings)
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantine")
        # A quarantined result is just a cache miss on next request.
        assert store.get(key) is None

    def test_filename_key_mismatch_detected(self, tmp_path):
        store, key, path = self._store(tmp_path)
        impostor = os.path.join(str(tmp_path), "rs-" + "0" * 16 + ".json")
        os.rename(path, impostor)
        findings = scan_result_store(str(tmp_path))
        assert "doctor.results-corrupt" in checks_of(findings)
        assert "does not match" in findings[0].why


class TestScanQueue:
    def _queue(self, tmp_path):
        from repro.serve.queue import JobQueue, JobSpec

        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(
            JobSpec(
                experiment="fig4",
                benchmarks=("compress",),
                length=2_000,
                size_bits=(4, 5),
            )
        )
        return queue, job

    def test_healthy_queue_verifies(self, tmp_path):
        queue, job = self._queue(tmp_path)
        queue.append_event(job, "running", {"points": 11})
        findings = scan_queue(str(tmp_path))
        assert checks_of(findings) == ["doctor.queue-ok"]

    def test_empty_queue_is_fine(self, tmp_path):
        assert checks_of(scan_queue(str(tmp_path))) == [
            "doctor.queue-empty"
        ]

    def test_corrupt_header_quarantines_whole_file(self, tmp_path):
        queue, job = self._queue(tmp_path)
        with open(job.path, "w", encoding="ascii") as handle:
            handle.write("garbage\n")
        findings = scan_queue(str(tmp_path))
        assert "doctor.queue-header" in checks_of(findings)
        findings = scan_queue(str(tmp_path), repair=True)
        assert "doctor.queue-repaired" in checks_of(findings)
        assert not os.path.exists(job.path)
        assert os.path.exists(job.path + ".quarantine")

    def test_torn_event_tail_is_warning_and_repairable(self, tmp_path):
        queue, job = self._queue(tmp_path)
        queue.append_event(job, "running", {"points": 11})
        with open(job.path, "a", encoding="ascii") as handle:
            handle.write('{"kind": "event", "state": "done"')
        findings = scan_queue(str(tmp_path))
        torn = [f for f in findings if f.check == "doctor.queue-event"]
        assert torn and torn[0].severity == "warning"
        scan_queue(str(tmp_path), repair=True)
        assert checks_of(scan_queue(str(tmp_path))) == ["doctor.queue-ok"]
        assert queue.find(job.id).state == "running"

    def test_damaged_result_artifact_detected(self, tmp_path):
        queue, job = self._queue(tmp_path)
        queue.append_event(job, "done", {"points": 11})
        with open(job.result_path(), "w", encoding="ascii") as handle:
            handle.write('{"schema": "repro.job-result/1"}')
        findings = scan_queue(str(tmp_path))
        assert "doctor.queue-result" in checks_of(findings)
        scan_queue(str(tmp_path), repair=True)
        assert os.path.exists(job.result_path() + ".quarantine")

    def test_doctor_cli_covers_results_and_queue(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        queue_dir = tmp_path / "queue"
        results_dir.mkdir()
        queue_dir.mkdir()
        code = main(
            [
                "doctor",
                "--results",
                str(results_dir),
                "--queue",
                str(queue_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "results" in out and "queue" in out
