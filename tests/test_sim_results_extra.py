"""Remaining result-container and engine-internals coverage."""

import numpy as np
import pytest

from repro.predictors import BimodalPredictor, make_predictor_spec
from repro.sim import simulate_reference
from repro.sim.results import SweepResult, TierPoint, TierSurface
from repro.workloads.micro import alternating_trace


class TestSweepResult:
    def make_surface(self, scheme):
        surface = TierSurface(scheme=scheme, trace_name="t")
        surface.add(
            4, TierPoint(col_bits=4, row_bits=0, misprediction_rate=0.1)
        )
        return surface

    def test_add_and_get(self):
        bundle = SweepResult()
        bundle.add("gas", self.make_surface("gas"))
        bundle.add("gshare", self.make_surface("gshare"))
        assert bundle["gas"].scheme == "gas"
        assert sorted(bundle.keys()) == ["gas", "gshare"]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SweepResult()["nope"]


class TestReferenceEngineWithObjects:
    def test_accepts_bare_predictor(self):
        trace = alternating_trace(50)
        predictor = BimodalPredictor(counters=16)
        result = simulate_reference(predictor, trace)
        assert result.engine == "reference"
        assert result.spec.scheme == "bimodal"
        assert result.accesses == 50

    def test_spec_fallback_for_exotic_objects(self):
        """Hand-built objects without a clean spec still simulate."""
        from repro.predictors import StaticPredictor, TournamentPredictor

        predictor = TournamentPredictor(
            component_a=StaticPredictor("taken"),
            component_b=StaticPredictor("not_taken"),
            chooser_rows=16,
        )
        trace = alternating_trace(30)
        result = simulate_reference(predictor, trace)
        assert result.accesses == 30

    def test_empty_trace_rejected(self):
        from repro.errors import TraceError
        from repro.traces import BranchTrace

        with pytest.raises(TraceError):
            simulate_reference(
                make_predictor_spec("bimodal", cols=4),
                BranchTrace.from_records([]),
            )


class TestExperimentOptions:
    def test_trace_caching_through_options(self):
        from repro.experiments import ExperimentOptions

        options = ExperimentOptions(length=2_000, seed=3)
        a = options.trace("compress")
        b = options.trace("compress")
        assert a is b  # served from the workload cache

    def test_resolve_defaults(self):
        from repro.experiments import ExperimentOptions

        options = ExperimentOptions()
        assert options.resolve_benchmarks(["espresso"]) == ["espresso"]
        options = ExperimentOptions(benchmarks=["sdet"])
        assert options.resolve_benchmarks(["espresso"]) == ["sdet"]


class TestSimulationResultEdgeCases:
    def test_predictions_shape_preserved(self):
        trace = alternating_trace(20)
        result = simulate_reference(
            make_predictor_spec("pas", rows=4, cols=2), trace
        )
        assert result.predictions.dtype == bool
        assert len(result.predictions) == 20
        assert result.first_level_miss_rate == 0.0  # perfect first level

    def test_taken_array_is_a_copy(self):
        trace = alternating_trace(10)
        result = simulate_reference(
            make_predictor_spec("bimodal", cols=4), trace
        )
        result.taken[0] = not result.taken[0]
        assert bool(trace.taken[0]) != bool(result.taken[0])

    def test_repr_mentions_rate(self):
        trace = alternating_trace(10)
        result = simulate_reference(
            make_predictor_spec("bimodal", cols=4), trace
        )
        assert "%" in repr(result)


class TestNumericEdges:
    def test_one_access_simulation(self):
        from repro.traces import BranchTrace

        trace = BranchTrace(
            pc=np.array([0x100], dtype=np.uint64),
            taken=np.array([True]),
            target=np.array([0x200], dtype=np.uint64),
        )
        for scheme, kwargs in [
            ("bimodal", dict(cols=4)),
            ("gshare", dict(rows=4)),
            ("pas", dict(rows=4, cols=2)),
        ]:
            spec = make_predictor_spec(scheme, **kwargs)
            from repro.sim import simulate_vectorized

            fast = simulate_vectorized(spec, trace)
            slow = simulate_reference(spec, trace)
            assert np.array_equal(fast.predictions, slow.predictions)
