"""Tests for repro.utils.rng, tables, and validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed, make_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
)


class TestRng:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_derive_seed_depends_on_label(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_derive_seed_depends_on_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_make_rng_streams_reproduce(self):
        a = make_rng(7, "gen").integers(0, 1 << 30, size=8)
        b = make_rng(7, "gen").integers(0, 1 << 30, size=8)
        assert list(a) == list(b)

    def test_make_rng_streams_differ_by_label(self):
        a = make_rng(7, "one").integers(0, 1 << 30, size=8)
        b = make_rng(7, "two").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    @given(st.integers(min_value=0, max_value=2**60), st.text(max_size=20))
    def test_derived_seed_in_uint64_range(self, seed, label):
        assert 0 <= derive_seed(seed, label) < 2**64


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == ""

    def test_headers_and_alignment(self):
        text = format_table(
            [["gshare", 4.58], ["GAs", 4.95]],
            headers=["scheme", "mispred %"],
        )
        lines = text.split("\n")
        assert lines[0].startswith("scheme")
        assert set(lines[1]) <= {"-", " "}
        assert "4.58" in lines[2]

    def test_ragged_rows_padded(self):
        text = format_table([["a"], ["b", "c"]])
        assert len(text.split("\n")) == 2

    def test_float_format_applied(self):
        text = format_table([[0.123456]], float_fmt=".4f")
        assert "0.1235" in text

    def test_custom_alignment(self):
        text = format_table([["ab", "c"]], align="rl")
        assert text == "ab  c"


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "3"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "n")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative_int(0, "n") == 0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_nonnegative_int(-1, "n")

    def test_power_of_two_accepts(self):
        assert check_power_of_two(8, "n") == 8

    @pytest.mark.parametrize("bad", [0, 3, 12])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_power_of_two(bad, "n")

    def test_in_range(self):
        assert check_in_range(0.5, "p", 0.0, 1.0) == 0.5
        with pytest.raises(ConfigurationError):
            check_in_range(1.5, "p", 0.0, 1.0)
