"""Tests for program construction, layout, and trace generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.traces import characterize, frequency_breakdown
from repro.workloads import (
    build_program,
    generate_trace,
    get_profile,
    list_workloads,
    make_workload,
)
from repro.workloads.layout import (
    KERNEL_TEXT_BASE,
    choose_taken_target,
    place_routines,
)
from repro.workloads.program import _partition_sizes


@pytest.fixture(scope="module")
def espresso_program():
    return build_program(get_profile("espresso"), seed=3)


@pytest.fixture(scope="module")
def espresso_trace(espresso_program):
    return generate_trace(espresso_program, length=60_000, seed=3)


class TestLayout:
    def test_placements_word_aligned_and_disjoint(self):
        rng = np.random.default_rng(0)
        placements = place_routines([4, 6, 3], kernel_fraction=0.0, rng=rng)
        all_pcs = [pc for p in placements for pc in p.branch_pcs]
        assert len(set(all_pcs)) == len(all_pcs)
        assert all(pc % 4 == 0 for pc in all_pcs)

    def test_kernel_fraction_places_high_addresses(self):
        rng = np.random.default_rng(0)
        placements = place_routines([3] * 20, kernel_fraction=0.5, rng=rng)
        kernel = [p for p in placements if p.is_kernel]
        assert len(kernel) == 10
        assert all(p.base >= KERNEL_TEXT_BASE for p in kernel)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            place_routines([], kernel_fraction=0.0, rng=np.random.default_rng(0))

    def test_taken_targets_aligned(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            target = choose_taken_target(0x400100, 0x400000, rng)
            assert target % 4 == 0


class TestPartitionSizes:
    def test_sizes_cover_total(self):
        rng = np.random.default_rng(0)
        sizes = _partition_sizes(100, (3, 8), rng)
        assert sum(sizes) == 100

    def test_no_trailing_singleton(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            sizes = _partition_sizes(37, (2, 5), rng)
            assert sum(sizes) == 37
            assert sizes[-1] >= 2 or len(sizes) == 1


class TestProgramStructure:
    def test_branch_population_matches_profile(self, espresso_program):
        profile = get_profile("espresso")
        assert espresso_program.num_static_branches == profile.static_branches

    def test_pcs_unique(self, espresso_program):
        table = espresso_program.branch_table()
        assert len(table) == espresso_program.num_static_branches

    def test_every_routine_has_backedge_and_body(self, espresso_program):
        for routine in espresso_program.routines:
            assert routine.backedge.is_backedge
            assert routine.backedge.behavior is None
            assert len(routine.body) >= 1
            assert routine.mean_trips >= 1.0

    def test_inclusion_probabilities_valid(self, espresso_program):
        for routine in espresso_program.routines:
            for branch in routine.body:
                assert 0.0 < branch.inclusion <= 1.0

    def test_correlated_sources_precede(self, espresso_program):
        from repro.workloads.behaviors import CorrelatedBehavior

        found = 0
        for routine in espresso_program.routines:
            for slot, branch in enumerate(routine.body):
                if isinstance(branch.behavior, CorrelatedBehavior):
                    found += 1
                    assert branch.behavior.source_slot < slot
        assert found > 0  # espresso's mix must include correlated branches

    def test_phases_cover_all_routines(self, espresso_program):
        seen = set()
        for members, probs in espresso_program.phases:
            assert probs.sum() == pytest.approx(1.0)
            seen.update(int(m) for m in members)
        assert seen == set(range(len(espresso_program.routines)))

    def test_deterministic_rebuild(self):
        profile = get_profile("compress")
        a = build_program(profile, seed=11)
        b = build_program(profile, seed=11)
        assert [r.backedge.pc for r in a.routines] == [
            r.backedge.pc for r in b.routines
        ]

    def test_describe_mentions_counts(self, espresso_program):
        text = espresso_program.describe()
        assert "routines" in text and "branches" in text


class TestGeneration:
    def test_exact_length(self, espresso_trace):
        assert len(espresso_trace) == 60_000

    def test_deterministic(self, espresso_program):
        a = generate_trace(espresso_program, length=5_000, seed=9)
        b = generate_trace(espresso_program, length=5_000, seed=9)
        assert np.array_equal(a.pc, b.pc)
        assert np.array_equal(a.taken, b.taken)

    def test_trace_seed_varies_path(self, espresso_program):
        a = generate_trace(espresso_program, length=5_000, seed=1)
        b = generate_trace(espresso_program, length=5_000, seed=2)
        assert not np.array_equal(a.taken, b.taken)

    def test_bad_length_rejected(self, espresso_program):
        with pytest.raises(WorkloadError):
            generate_trace(espresso_program, length=0)

    def test_pcs_come_from_program(self, espresso_program, espresso_trace):
        table = espresso_program.branch_table()
        unique_pcs = np.unique(espresso_trace.pc)
        assert all(int(pc) in table for pc in unique_pcs)

    def test_targets_are_static_per_site(
        self, espresso_program, espresso_trace
    ):
        table = espresso_program.branch_table()
        pc = espresso_trace.pc
        target = espresso_trace.target
        # Every instance carries its site's static taken-target.
        for i in range(0, len(espresso_trace), 997):
            branch = table[int(pc[i])]
            assert int(target[i]) == branch.taken_target

    def test_instruction_count_reflects_branch_fraction(self, espresso_trace):
        profile = get_profile("espresso")
        expected = round(60_000 / profile.branch_fraction)
        assert espresso_trace.instruction_count == expected


class TestCalibration:
    """The realized traces must land near the paper's Table 1/2 numbers."""

    @pytest.mark.parametrize("name", ["espresso", "mpeg_play"])
    def test_hot_buckets_match(self, name):
        trace = make_workload(name, length=120_000, seed=1)
        profile = get_profile(name)
        breakdown = frequency_breakdown(trace)
        # The 50%-bucket must match the paper's count within 50%.
        assert breakdown.branch_counts[0] == pytest.approx(
            profile.buckets[0], rel=0.5
        )
        # 90% coverage within a factor of ~1.6 of the paper's value.
        stats = characterize(trace)
        paper = profile.paper_branches_for_90pct
        assert paper / 1.8 <= stats.branches_for_90pct <= paper * 1.8

    def test_small_vs_large_program_contrast(self):
        """The paper's core workload contrast must hold: IBS workloads
        exercise far more branches than small SPEC ones."""
        espresso = make_workload("espresso", length=120_000, seed=1)
        real_gcc = make_workload("real_gcc", length=120_000, seed=1)
        assert (
            characterize(real_gcc).branches_for_90pct
            > 8 * characterize(espresso).branches_for_90pct
        )

    def test_taken_rate_plausible(self):
        trace = make_workload("groff", length=60_000, seed=1)
        assert 0.45 <= trace.taken_rate <= 0.8


class TestRegistry:
    def test_list_workloads(self):
        names = list_workloads()
        # 14 synthetic profiles plus the measured real_* suite.
        assert len(names) == 18
        assert "espresso" in names and "real_gcc" in names
        assert "real_quicksort" in names

    def test_cache_returns_same_object(self):
        a = make_workload("compress", length=2_000, seed=5)
        b = make_workload("compress", length=2_000, seed=5)
        assert a is b

    def test_cache_bypass(self):
        a = make_workload("compress", length=2_000, seed=6, cache=False)
        b = make_workload("compress", length=2_000, seed=6, cache=False)
        assert a is not b
        assert np.array_equal(a.pc, b.pc)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("quake", length=1_000)
