"""Tests for sweep machinery and result containers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predictors import make_predictor_spec
from repro.sim import SimulationResult, TierSurface, sweep_shapes, sweep_tiers
from repro.sim.engine import simulate
from repro.sim.results import TierPoint
from repro.sim.sweep import spec_for_point
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def small_trace():
    return make_workload("compress", length=4_000, seed=2)


class TestSimulationResult:
    def test_rates(self):
        result = SimulationResult(
            spec=make_predictor_spec("bimodal", cols=4),
            trace_name="t",
            predictions=np.array([True, True, False, False]),
            taken=np.array([True, False, False, True]),
        )
        assert result.mispredictions == 2
        assert result.misprediction_rate == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationResult(
                spec=make_predictor_spec("bimodal", cols=4),
                trace_name="t",
                predictions=np.array([True]),
                taken=np.array([True, False]),
            )

    def test_unknown_engine_rejected(self, small_trace):
        with pytest.raises(ConfigurationError):
            simulate(
                make_predictor_spec("bimodal", cols=4),
                small_trace,
                engine="quantum",
            )


class TestSpecForPoint:
    def test_row_zero_is_bimodal(self):
        spec = spec_for_point("gas", col_bits=6, row_bits=0)
        assert spec.scheme == "bimodal"
        assert spec.cols == 64

    def test_regular_point(self):
        spec = spec_for_point("gshare", col_bits=2, row_bits=4)
        assert spec.rows == 16 and spec.cols == 4

    def test_pas_carries_bht(self):
        spec = spec_for_point("pas", col_bits=0, row_bits=4, bht_entries=128)
        assert spec.bht_entries == 128

    def test_path_clamps_chunk_width(self):
        spec = spec_for_point("path", col_bits=3, row_bits=1)
        assert spec.path_bits_per_branch == 1

    def test_bht_rejected_for_global(self):
        with pytest.raises(ConfigurationError):
            spec_for_point("gshare", col_bits=2, row_bits=2, bht_entries=64)

    def test_unsweepable_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_for_point("bimode", col_bits=2, row_bits=2)


class TestTierSurface:
    def test_add_and_lookup(self):
        surface = TierSurface(scheme="gas", trace_name="t")
        surface.add(4, TierPoint(col_bits=4, row_bits=0, misprediction_rate=0.2))
        surface.add(4, TierPoint(col_bits=0, row_bits=4, misprediction_rate=0.1))
        assert surface.best_in_tier(4).row_bits == 4
        assert surface.point(4, 0).misprediction_rate == 0.2

    def test_tier_membership_enforced(self):
        surface = TierSurface(scheme="gas", trace_name="t")
        with pytest.raises(ConfigurationError):
            surface.add(
                5, TierPoint(col_bits=4, row_bits=0, misprediction_rate=0.2)
            )

    def test_missing_tier_rejected(self):
        surface = TierSurface(scheme="gas", trace_name="t")
        with pytest.raises(ConfigurationError):
            surface.tier(7)

    def test_missing_point_rejected(self):
        surface = TierSurface(scheme="gas", trace_name="t")
        surface.add(4, TierPoint(col_bits=4, row_bits=0, misprediction_rate=0.2))
        with pytest.raises(ConfigurationError):
            surface.point(4, 3)


class TestSweepTiers:
    def test_full_tier_has_n_plus_one_points(self, small_trace):
        surface = sweep_tiers("gas", small_trace, size_bits=[4, 6])
        assert len(surface.tier(4)) == 5
        assert len(surface.tier(6)) == 7
        assert surface.sizes == [4, 6]

    def test_points_ordered_from_address_edge(self, small_trace):
        surface = sweep_tiers("gshare", small_trace, size_bits=[5])
        row_bits = [p.row_bits for p in surface.tier(5)]
        assert row_bits == list(range(6))

    def test_row_filter(self, small_trace):
        surface = sweep_tiers(
            "gas", small_trace, size_bits=[6], row_bits_filter=[0, 6]
        )
        assert len(surface.tier(6)) == 2

    def test_pas_tier_reports_miss_rate(self, small_trace):
        surface = sweep_tiers(
            "pas", small_trace, size_bits=[4], bht_entries=64
        )
        # Two-level points carry the first-level miss rate; the
        # address-indexed edge has no first level.
        assert surface.point(4, 0).first_level_miss_rate is None
        assert surface.point(4, 4).first_level_miss_rate is not None

    def test_compress_saturates_like_small_spec(self):
        """Paper Figure 2 shape: compress (few hot branches) gains
        almost nothing from growing the address-indexed table."""
        trace = make_workload("compress", length=30_000, seed=3)
        small = sweep_tiers("gas", trace, size_bits=[8],
                            row_bits_filter=[0]).point(8, 0)
        large = sweep_tiers("gas", trace, size_bits=[13],
                            row_bits_filter=[0]).point(13, 0)
        assert abs(small.misprediction_rate - large.misprediction_rate) < 0.02


class TestSweepShapes:
    def test_explicit_shapes(self, small_trace):
        points = sweep_shapes(
            "gshare", small_trace, shapes=[(2, 4), (4, 2)]
        )
        assert [(p.col_bits, p.row_bits) for p in points] == [(2, 4), (4, 2)]
