"""Parallel sweep executor tests: identity, fault paths, services.

The contract under test is the ISSUE's hard one: ``sweep_tiers(...,
workers=N)`` must produce *exactly* the serial results — same points,
same floats, same tier order — while surviving worker crashes, parent
SIGINT, and injected faults, all coordinated through the checkpoint
journal. The satellites (trace store, plan-from-estimate pruning,
estimator-driven aliasing repair) are covered here too.
"""

import glob
import os
import tempfile

import pytest

from repro.check.static_alias import check_aliasing
from repro.cli import EXIT_INTERRUPT, main
from repro.errors import ConfigurationError
from repro.exec import leases
from repro.obs import get_tracer, reset_metrics, snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.runtime import clear_faults, install_faults
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    clear_faults()
    reset_metrics()
    get_tracer().reset()
    yield
    clear_faults()
    reset_metrics()
    get_tracer().close_sink()
    get_tracer().reset()


@pytest.fixture(scope="module")
def trace():
    return make_workload("compress", length=4_000, seed=2)


def surface_cells(surface):
    """Every field of every point, in rendering order — equality on
    this is byte-for-byte equality of the sweep's results."""
    return [
        (n, p.col_bits, p.row_bits, p.misprediction_rate,
         p.aliasing_rate, p.first_level_miss_rate)
        for n, points in surface.tiers.items()
        for p in points
    ]


class TestParallelIdentity:
    @pytest.mark.parametrize("scheme", ["gas", "gshare"])
    def test_matches_serial_exactly(self, scheme, trace):
        serial = sweep_tiers(scheme, trace, size_bits=[4, 5])
        parallel = sweep_tiers(scheme, trace, size_bits=[4, 5], workers=2)
        assert surface_cells(parallel) == surface_cells(serial)

    def test_matches_serial_with_checkpoint_dir(self, trace, tmp_path):
        serial = sweep_tiers("gas", trace, size_bits=[4, 5])
        parallel = sweep_tiers(
            "gas", trace, size_bits=[4, 5], workers=3,
            checkpoint_dir=str(tmp_path),
        )
        assert surface_cells(parallel) == surface_cells(serial)
        journals = list(tmp_path.glob("*.journal"))
        assert len(journals) == 1
        # The scratch directory is cleaned up on success.
        assert not os.path.isdir(str(journals[0]) + ".exec")

    def test_tier_order_follows_plan_not_completion(self, trace):
        surface = sweep_tiers("gas", trace, size_bits=[5, 4], workers=2)
        assert list(surface.tiers) == [5, 4]
        for points in surface.tiers.values():
            rows = [p.row_bits for p in points]
            assert rows == sorted(rows)

    def test_ephemeral_journal_leaves_no_tempdirs(self, trace):
        pattern = os.path.join(tempfile.gettempdir(), "repro-sweep-*")
        before = set(glob.glob(pattern))
        sweep_tiers("gas", trace, size_bits=[4], workers=2)
        assert set(glob.glob(pattern)) == before

    def test_workers_must_be_positive(self, trace):
        with pytest.raises(ConfigurationError):
            sweep_tiers("gas", trace, size_bits=[4], workers=0)


class TestWorkerCrashResilience:
    def test_all_workers_crashing_falls_back_to_serial(
        self, trace, monkeypatch
    ):
        serial_cells = surface_cells(
            sweep_tiers("gas", trace, size_bits=[4])
        )
        reset_metrics()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exec.worker:raise")
        surface = sweep_tiers("gas", trace, size_bits=[4], workers=2)
        assert surface_cells(surface) == serial_cells
        counters = snapshot()["counters"]
        assert counters["exec.worker_failures"] > 0
        assert counters["sweep.points_computed"] == 5

    def test_killed_worker_points_survive_in_journal(
        self, trace, monkeypatch
    ):
        # Every worker journals one point and dies on its second (the
        # fault fires per process); the parent must keep the journaled
        # points across respawn rounds and still converge on the full,
        # serial-identical surface.
        serial_cells = surface_cells(
            sweep_tiers("gas", trace, size_bits=[4])
        )
        reset_metrics()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exec.worker:raise@2")
        surface = sweep_tiers("gas", trace, size_bits=[4], workers=2)
        assert surface_cells(surface) == serial_cells
        counters = snapshot()["counters"]
        assert counters["exec.worker_failures"] >= 1
        # Respawn rounds made progress from dead workers' journals.
        assert counters["exec.workers_spawned"] > 2

    def test_interrupted_parallel_run_resumes_from_journal(
        self, trace, tmp_path, monkeypatch
    ):
        serial_cells = surface_cells(
            sweep_tiers("gas", trace, size_bits=[4, 5])
        )
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exec.poll:interrupt@1")
        with pytest.raises(KeyboardInterrupt):
            sweep_tiers(
                "gas", trace, size_bits=[4, 5], workers=2,
                checkpoint_dir=str(tmp_path),
            )
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        resumed = sweep_tiers(
            "gas", trace, size_bits=[4, 5], workers=2,
            checkpoint_dir=str(tmp_path),
        )
        assert surface_cells(resumed) == serial_cells


class TestWorkerFaultRetry:
    def test_transient_point_fault_retries_inside_worker(
        self, trace, monkeypatch
    ):
        serial_cells = surface_cells(
            sweep_tiers("gas", trace, size_bits=[4])
        )
        reset_metrics()
        # One injected failure per worker process, under the retry
        # wrapper: the point retries and succeeds, the worker lives,
        # and the sweep never degrades to respawn rounds.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "sweep.point:raise@2")
        surface = sweep_tiers("gas", trace, size_bits=[4], workers=2)
        assert surface_cells(surface) == serial_cells
        counters = snapshot()["counters"]
        assert counters["retry.attempts"] >= 1
        assert counters.get("exec.worker_failures", 0) == 0


class TestCliParallel:
    RUN = ["run", "fig4", "--length", "2000",
           "--benchmark", "compress", "--sizes", "4"]

    def test_workers_flag_matches_serial_output(self, capsys):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        assert main(self.RUN + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == baseline

    def test_parallel_interrupt_exits_130_and_resumes(
        self, tmp_path, capsys
    ):
        assert main(self.RUN) == 0
        baseline = capsys.readouterr().out
        install_faults("exec.poll:interrupt@1")
        code = main(
            self.RUN + ["--checkpoint-dir", str(tmp_path),
                        "--workers", "2"]
        )
        assert code == EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err
        clear_faults()
        code = main(
            self.RUN + ["--checkpoint-dir", str(tmp_path),
                        "--workers", "2"]
        )
        assert code == 0
        assert capsys.readouterr().out == baseline


class TestPlanFromEstimate:
    def test_high_threshold_prunes_everything(self, trace):
        surface = sweep_tiers(
            "gas", trace, size_bits=[4], plan_from_estimate=1.0
        )
        assert surface.tiers == {}
        assert snapshot()["counters"]["sweep.points_pruned"] == 5

    def test_zero_threshold_prunes_nothing(self, trace):
        serial_cells = surface_cells(
            sweep_tiers("gas", trace, size_bits=[4])
        )
        surface = sweep_tiers(
            "gas", trace, size_bits=[4], plan_from_estimate=0.0
        )
        assert surface_cells(surface) == serial_cells
        assert snapshot()["counters"].get("sweep.points_pruned", 0) == 0

    def test_pruning_is_logged_not_silent(self, trace, caplog):
        with caplog.at_level("WARNING", logger="repro.sim.sweep"):
            sweep_tiers(
                "gas", trace, size_bits=[4], plan_from_estimate=1.0
            )
        assert any(
            "pruned 5 of 5" in record.getMessage()
            for record in caplog.records
        )

    def test_cli_flag(self, capsys):
        base = ["run", "fig4", "--length", "2000", "--benchmark",
                "compress", "--sizes", "4"]
        assert main(base) == 0
        baseline = capsys.readouterr().out
        # Threshold 0 keeps every point (pruning is strictly below),
        # so the flag must be output-neutral.
        assert main(base + ["--plan-from-estimate", "0.0"]) == 0
        assert capsys.readouterr().out == baseline


class TestTraceStore:
    def test_from_env_requires_variable(self, tmp_path, monkeypatch):
        assert TraceStore.from_env() is None
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        store = TraceStore.from_env()
        assert store is not None
        assert store.directory == str(tmp_path)

    def test_get_counts_hits_and_misses(self, tmp_path):
        store = TraceStore(str(tmp_path))
        first = store.get("compress", length=2_000, seed=1)
        second = store.get("compress", length=2_000, seed=1)
        counters = snapshot()["counters"]
        assert counters["store.misses"] == 1
        assert counters["store.hits"] == 1
        assert list(first.taken) == list(second.taken)

    def test_get_or_create_caches_by_key(self, tmp_path):
        store = TraceStore(str(tmp_path))
        calls = []

        def factory():
            calls.append(1)
            return make_workload("compress", length=1_000, seed=5)

        first = store.get_or_create("micro-x", factory)
        second = store.get_or_create("micro-x", factory)
        assert calls == [1]
        assert list(first.taken) == list(second.taken)

    def test_put_is_keyed_by_fingerprint(self, tmp_path, trace):
        store = TraceStore(str(tmp_path))
        path = store.put(trace)
        assert trace.fingerprint() in os.path.basename(path)
        again = store.put(trace)
        assert again == path
        assert snapshot()["counters"]["store.hits"] == 1

    def test_experiment_trace_goes_through_store(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments.base import ExperimentOptions

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        options = ExperimentOptions(length=2_000, seed=3)
        options.trace("compress")
        options.trace("compress")
        counters = snapshot()["counters"]
        assert counters["store.misses"] == 1
        assert counters["store.hits"] == 1

    def test_validate_dealias_goes_through_store(
        self, tmp_path, monkeypatch
    ):
        import repro.check.estimator as estimator

        monkeypatch.setattr(
            estimator, "VALIDATION_TRACE_LENGTH", 2_000
        )
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        estimator.validate_dealias(
            micros=["mixed-field"], schemes=["gshare"], size_bits=[5]
        )
        assert snapshot()["counters"]["store.misses"] == 1
        assert list(tmp_path.glob("micro-mixed-field-L2000.npz"))
        estimator.validate_dealias(
            micros=["mixed-field"], schemes=["gshare"], size_bits=[5]
        )
        assert snapshot()["counters"]["store.hits"] == 1


class TestAliasingFix:
    def test_warning_carries_suggested_budget(self):
        findings = check_aliasing(
            benchmarks=["compress"], schemes=["gshare"],
            size_bits=[4], fix=True,
        )
        warnings = [
            f for f in findings
            if f.check == "alias.pressure" and f.severity == "warning"
        ]
        assert warnings
        for finding in warnings:
            suggested = finding.data["suggested_budget_bits"]
            assert suggested is not None and suggested > 4
            assert "fix:" in finding.why

    def test_without_fix_no_suggestion(self):
        findings = check_aliasing(
            benchmarks=["compress"], schemes=["gshare"], size_bits=[4]
        )
        assert all(
            "suggested_budget_bits" not in f.data for f in findings
        )

    def test_smallest_sufficient_budget_bounds(self):
        from repro.aliasing.weights import branch_weights_from_program
        from repro.check.estimator import smallest_sufficient_budget
        from repro.workloads.profiles import get_profile
        from repro.workloads.program import build_program

        program = build_program(get_profile("compress"), seed=0)
        weights = branch_weights_from_program(program)
        budget = smallest_sufficient_budget("gshare", weights, 5)
        assert budget is not None and budget >= 5
        assert (
            smallest_sufficient_budget(
                "gshare", weights, 5, max_bits=budget - 1
            )
            is None
        )


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        assert leases.try_claim(str(tmp_path), 0)
        assert not leases.try_claim(str(tmp_path), 0)
        assert leases.try_claim(str(tmp_path), 1)

    def test_done_lease_is_never_reclaimed(self, tmp_path):
        assert leases.try_claim(str(tmp_path), 0, ttl_s=0.0)
        leases.mark_done(str(tmp_path), 0)
        assert not leases.try_claim(str(tmp_path), 0, ttl_s=0.0)

    def test_expired_lease_is_reclaimed(self, tmp_path):
        assert leases.try_claim(str(tmp_path), 0, ttl_s=0.0)
        assert leases.try_claim(str(tmp_path), 0, ttl_s=0.0)
        assert snapshot()["counters"]["exec.leases_reclaimed"] == 1

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        path = leases.lease_path(str(tmp_path), 0)
        fd = os.open(path, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"not json")
        os.close(fd)
        assert leases.read_lease(str(tmp_path), 0) is None
        assert leases.try_claim(str(tmp_path), 0)


class TestTelemetryMerge:
    def test_histogram_absorb(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sweep.point_s")
        histogram.observe(1.0)
        histogram.absorb(
            {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0}
        )
        summary = registry.snapshot()["histograms"]["sweep.point_s"]
        assert summary["count"] == 3
        assert summary["total"] == 7.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_tracer_absorb_aggregates(self):
        tracer = SpanTracer()
        tracer.absorb_aggregates(
            {"exec.shard": {"count": 2, "total_s": 3.0,
                            "min_s": 1.0, "max_s": 2.0}}
        )
        tracer.absorb_aggregates(
            {"exec.shard": {"count": 1, "total_s": 0.5,
                            "min_s": 0.5, "max_s": 0.5}}
        )
        aggregates = tracer.aggregates()
        assert aggregates["exec.shard"]["count"] == 3
        assert aggregates["exec.shard"]["min_s"] == 0.5

    def test_parallel_run_merges_worker_telemetry(self, trace):
        sweep_tiers("gas", trace, size_bits=[4], workers=2)
        data = snapshot()
        assert data["counters"]["sim.branches"] == 5 * 4_000
        assert data["histograms"]["sweep.point_s"]["count"] == 5
