"""Suite-wide isolation for cross-run telemetry.

``repro run`` appends to the run ledger (``~/.repro/ledger.jsonl`` by
default) and the phase profiler keeps module-global state — both must
never leak out of (or between) tests. Every test gets a throwaway
ledger path via ``$REPRO_LEDGER`` and a pinned ``$REPRO_GIT_REV`` (so
ledger tests never shell out to git), and profiling is force-disabled
on teardown.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger.jsonl"))
    monkeypatch.setenv("REPRO_GIT_REV", "testrev")
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
    monkeypatch.delenv("REPRO_SERVE_QUEUE", raising=False)
    yield


@pytest.fixture(autouse=True)
def _profiling_off():
    from repro.obs.ledger import consume_sweep_keys
    from repro.obs.profile import disable_profiling

    yield
    disable_profiling()
    consume_sweep_keys()  # drop keys noted by sweeps that never reported
