"""Runtime profiler: CFG soundness and trace materialization.

The acceptance property: every (branch, successor) edge observed at
runtime exists in the statically extracted CFG — zero violations,
zero unknown sites — across a spread of control-flow shapes, on
whichever backend (``sys.monitoring`` or ``settrace``) this
interpreter uses.
"""

import random

import pytest

from repro.cfg.corpus import (
    binary_search,
    collatz_steps,
    count_words,
    quicksort,
)
from repro.cfg.profile import BranchProfiler, profile_calls
from repro.errors import AnalysisError
from repro.traces.trace import BranchTrace

from tests.test_cfg_bytecode import (
    clamp_sum,
    classify,
    count_even,
    find_pair,
)


def with_try_except(values):
    hits = 0
    for value in values:
        try:
            if 100 // value > 10:
                hits += 1
        except ZeroDivisionError:
            hits -= 1
    return hits


def with_break_continue(values):
    total = 0
    for value in values:
        if value < 0:
            continue
        if value > 100:
            break
        total += value
    return total


#: (function, driver) pairs covering ≥10 distinct control-flow shapes.
SOUNDNESS_CASES = [
    (count_even, lambda f: f(list(range(37)))),
    (classify, lambda f: [f(x) for x in range(-5, 15)]),
    (clamp_sum, lambda f: f(list(range(-10, 30)), 0, 20)),
    (find_pair, lambda f: f([3, 1, 4, 1, 5, 9, 2, 6], 11)),
    (count_words, lambda f: f("the quick  brown\nfox jumps ")),
    (binary_search, lambda f: [f(list(range(0, 64, 2)), k) for k in range(10)]),
    (collatz_steps, lambda f: [f(n) for n in range(2, 40)]),
    (quicksort, lambda f: f([9, 2, 7, 2, 8, 1, 0, 5, 5, 3] * 3)),
    (with_try_except, lambda f: f([0, 1, 2, 50, 0, 3])),
    (with_break_continue, lambda f: f([-1, 5, 12, -3, 7, 200, 1])),
]


class TestCfgSoundness:
    @pytest.mark.parametrize(
        "function,driver", SOUNDNESS_CASES, ids=lambda c: getattr(c, "__name__", "")
    )
    def test_observed_edges_exist_statically(self, function, driver):
        profiler = BranchProfiler([function])
        with profiler:
            driver(function)
        assert profiler.violations == []
        assert profiler.unknown_sites == 0
        assert len(profiler) > 0
        # Every observed (site, outcome) resolves to a static site.
        for slot, edges in profiler.observed_edges().items():
            ordinals = {
                site.ordinal for site in profiler.cfgs[slot].branch_sites
            }
            for ordinal, taken in edges:
                assert ordinal in ordinals
                assert isinstance(taken, bool)

    def test_all_functions_at_once_interleave(self):
        functions = [function for function, _ in SOUNDNESS_CASES]
        profiler = BranchProfiler(functions)
        with profiler:
            for function, driver in SOUNDNESS_CASES:
                driver(function)
        assert profiler.violations == []
        assert profiler.unknown_sites == 0
        # Sites from multiple code objects appear in one stream.
        assert len(profiler.observed_edges()) >= 5


class TestProfilerLifecycle:
    def test_reentry_is_rejected(self):
        profiler = BranchProfiler([classify])
        with profiler:
            with pytest.raises(AnalysisError):
                profiler.__enter__()

    def test_non_python_callable_is_rejected(self):
        with pytest.raises(AnalysisError):
            BranchProfiler([len])

    def test_empty_profiler_cannot_build_trace(self):
        profiler = BranchProfiler([classify])
        with pytest.raises(AnalysisError):
            profiler.build_trace("empty")

    def test_uninstrumented_code_is_not_recorded(self):
        profiler = BranchProfiler([classify])
        with profiler:
            count_even(list(range(20)))  # not instrumented
        assert len(profiler) == 0


class TestTraceMaterialization:
    def test_trace_matches_event_stream(self):
        profiler = BranchProfiler([collatz_steps])
        with profiler:
            for n in range(2, 30):
                collatz_steps(n)
        trace = profiler.build_trace("collatz")
        assert isinstance(trace, BranchTrace)
        assert len(trace) == len(profiler)
        assert trace.name == "collatz"
        layout = profiler.site_layout()
        addresses = {pc for pc, _target in layout.values()}
        assert set(int(pc) for pc in trace.pc) <= addresses

    def test_backward_taken_sites_target_function_base(self):
        profiler = BranchProfiler([count_even])
        layout = profiler.site_layout()
        for (slot, ordinal), (pc, target) in layout.items():
            site = profiler.cfgs[slot].branch_sites[ordinal]
            if site.taken_target <= site.offset:
                assert target < pc  # loop-closing shape
            else:
                assert target > pc

    def test_layout_is_word_aligned_and_disjoint(self):
        profiler = BranchProfiler([quicksort, binary_search])
        layout = profiler.site_layout()
        addresses = [pc for pc, _ in layout.values()]
        assert len(addresses) == len(set(addresses))
        assert all(address % 4 == 0 for address in addresses)

    def test_profiling_is_deterministic(self):
        def run_once():
            rng = random.Random(7)
            values = [rng.randrange(100) for _ in range(50)]
            profiler = BranchProfiler([quicksort])
            with profiler:
                quicksort(values)
            return profiler.build_trace("qs")

        first, second = run_once(), run_once()
        assert (first.pc == second.pc).all()
        assert (first.taken == second.taken).all()


class TestProfileCalls:
    def test_one_shot_wrapper(self):
        trace = profile_calls(
            lambda: [collatz_steps(n) for n in range(5, 25)],
            instrument=[collatz_steps],
            name="wrapped",
        )
        assert trace.name == "wrapped"
        assert len(trace) > 0
