"""Smoke and contract tests for every experiment module.

Shape (paper-faithfulness) assertions live in test_shapes.py; these
tests check that each experiment runs, renders, and returns the
structured data its bench and the EXPERIMENTS.md generator rely on.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentOptions,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import experiment_title, get_experiment

#: Small, fast options reused by every smoke test.
FAST = dict(length=6_000, seed=1)


def fast_options(**overrides):
    merged = {**FAST, **overrides}
    return ExperimentOptions(**merged)


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = list_experiments()
        assert len(ids) == 19
        for expected in (
            ("table1", "table2", "table3")
            + tuple(f"fig{i}" for i in range(2, 11))
            + (
                "ablation_aliasing",
                "ablation_dealias",
                "ablation_budget",
                "ablation_tagged",
                "ablation_pipeline",
                "ablation_multiprogramming",
                "ablation_first_level",
            )
        ):
            assert expected in ids

    def test_titles_resolve(self):
        for experiment_id in list_experiments():
            assert experiment_title(experiment_id)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment(
                "table2",
                fast_options(benchmarks=["doom"]),
            )


class TestCharacterizationExperiments:
    def test_table1_rows_for_all_benchmarks(self):
        result = run_experiment(
            "table1", fast_options(benchmarks=["espresso", "sdet"])
        )
        assert "espresso" in result.text and "sdet" in result.text
        assert set(result.data["stats"]) == {"espresso", "sdet"}

    def test_table2_buckets_partition(self):
        result = run_experiment(
            "table2", fast_options(benchmarks=["espresso"])
        )
        breakdown = result.data["breakdowns"]["espresso"]
        assert sum(breakdown.branch_counts) == breakdown.total_static


class TestSeriesExperiments:
    def test_fig2_series_lengths(self):
        result = run_experiment(
            "fig2",
            fast_options(benchmarks=["compress", "mpeg_play"],
                         size_bits=[4, 6, 8]),
        )
        series = result.data["series"]
        assert set(series) == {"compress", "mpeg_play"}
        assert all(len(v) == 3 for v in series.values())

    def test_fig3_rates_are_probabilities(self):
        result = run_experiment(
            "fig3", fast_options(benchmarks=["compress"], size_bits=[4, 6])
        )
        for rates in result.data["series"].values():
            assert all(0 <= r <= 1 for r in rates)


class TestSurfaceExperiments:
    @pytest.mark.parametrize("experiment_id", ["fig4", "fig6", "fig9"])
    def test_surfaces_cover_requested_tiers(self, experiment_id):
        result = run_experiment(
            experiment_id,
            fast_options(benchmarks=["espresso"], size_bits=[4, 6]),
        )
        surface = result.data["surfaces"]["espresso"]
        assert surface.sizes == [4, 6]
        assert len(surface.tier(6)) == 7
        assert "*" in result.text  # best-in-tier marker rendered

    def test_fig5_carries_aliasing(self):
        result = run_experiment(
            "fig5", fast_options(benchmarks=["espresso"], size_bits=[5])
        )
        surface = result.data["surfaces"]["espresso"]
        assert all(p.aliasing_rate is not None for p in surface.tier(5))

    def test_fig10_one_surface_per_bht_size(self):
        result = run_experiment("fig10", fast_options(size_bits=[5, 7]))
        assert set(result.data["surfaces"]) == {
            "128 entries 4-way",
            "1024 entries 4-way",
            "2048 entries 4-way",
        }
        assert "first-level miss rate" in result.text


class TestDiffExperiments:
    @pytest.mark.parametrize("experiment_id", ["fig7", "fig8"])
    def test_grids_have_all_cells(self, experiment_id):
        result = run_experiment(
            experiment_id, fast_options(size_bits=[4, 6])
        )
        grid = result.data["grid"]
        assert len(grid.cells) == 5 + 7
        assert grid.trace_name.startswith("mpeg_play")
        assert "percentage points" in result.text


class TestTable3:
    def test_rows_per_scheme_and_budget(self):
        result = run_experiment(
            "table3",
            fast_options(benchmarks=["espresso"], size_bits=[5, 7]),
        )
        rows = result.data["rows"]["espresso"]
        labels = [r.predictor_label for r in rows]
        assert labels == [
            "GAs", "gshare", "PAs(inf)", "PAs(2k)", "PAs(1k)", "PAs(128)"
        ]
        for row in rows:
            assert set(row.best) == {5, 7}
        # Finite PAs rows expose a first-level miss rate.
        assert rows[5].first_level_miss_rate is not None
        assert rows[0].first_level_miss_rate is None


class TestAblations:
    def test_aliasing_ablation_shares_bounded(self):
        result = run_experiment(
            "ablation_aliasing", fast_options(benchmarks=["mpeg_play"])
        )
        for record in result.data.values():
            assert 0.0 <= record["all_ones_share"] <= 1.0
            assert 0.0 <= record["stats"].harmless_share <= 1.0

    def test_dealias_ablation_includes_contenders(self):
        result = run_experiment(
            "ablation_dealias", fast_options(benchmarks=["mpeg_play"])
        )
        assert "gskew" in result.text
        assert "bimode" in result.text
        assert "tournament" in result.text

    def test_budget_ablation_reports_bits(self):
        result = run_experiment(
            "ablation_budget", fast_options(benchmarks=["mpeg_play"])
        )
        assert "state bits" in result.text
        assert len(result.data) == 4

    def test_tagged_ablation_reports_both_sides(self):
        result = run_experiment(
            "ablation_tagged", fast_options(benchmarks=["mpeg_play"])
        )
        record = result.data[("mpeg_play", 9)]
        assert set(record) == {
            "bimodal",
            "bimodal_aliasing",
            "tagged_bimodal",
            "gshare",
            "tagged_gshare",
            "tagged_gshare_miss",
        }
        assert 0 <= record["tagged_gshare_miss"] <= 1

    def test_pipeline_ablation_metrics(self):
        result = run_experiment(
            "ablation_pipeline", fast_options(benchmarks=["mpeg_play"])
        )
        metrics = result.data[("mpeg_play", "bimodal")]
        assert metrics.ipc > 0
        assert "speedup" in result.text

    def test_multiprogramming_ablation_quanta(self):
        result = run_experiment(
            "ablation_multiprogramming", fast_options()
        )
        assert ("bimodal 4k", "baseline") in result.data
        assert ("bimodal 4k", 100) in result.data

    def test_first_level_ablation_keys(self):
        result = run_experiment(
            "ablation_first_level", fast_options(benchmarks=["espresso"])
        )
        assert ("espresso", "inf") in result.data
        assert ("espresso", "pas", 128) in result.data
        assert ("espresso", "sas", 128) in result.data


class TestResultObject:
    def test_show_prints(self, capsys):
        result = run_experiment(
            "table2", fast_options(benchmarks=["espresso"])
        )
        result.show()
        out = capsys.readouterr().out
        assert "table2" in out
