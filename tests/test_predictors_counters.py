"""Tests for saturating counters in all three consistent forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.predictors.counters import (
    CounterBank,
    SaturatingCounter,
    counter_init_state,
    counter_outputs,
    counter_states,
    counter_threshold,
    counter_transitions,
)


class TestAutomatonTables:
    def test_two_bit_transitions(self):
        table = counter_transitions(2)
        # Not-taken decrements with saturation at 0.
        assert list(table[0]) == [0, 0, 1, 2]
        # Taken increments with saturation at 3.
        assert list(table[1]) == [1, 2, 3, 3]

    def test_two_bit_outputs(self):
        assert list(counter_outputs(2)) == [False, False, True, True]

    def test_one_bit_counter(self):
        table = counter_transitions(1)
        assert list(table[0]) == [0, 0]
        assert list(table[1]) == [1, 1]
        assert list(counter_outputs(1)) == [False, True]

    def test_init_state_is_weakly_taken(self):
        assert counter_init_state(2) == 2
        assert counter_outputs(2)[counter_init_state(2)]

    @given(st.integers(min_value=1, max_value=6))
    def test_tables_consistent_any_width(self, nbits):
        table = counter_transitions(nbits)
        states = counter_states(nbits)
        assert table.shape == (2, states)
        # Taken transitions never decrease, not-taken never increase.
        assert (table[1] >= np.arange(states)).all()
        assert (table[0] <= np.arange(states)).all()
        assert counter_threshold(nbits) == states // 2


class TestSaturatingCounter:
    def test_default_initial_prediction(self):
        assert SaturatingCounter().predict() is True

    def test_training_to_not_taken(self):
        counter = SaturatingCounter()
        counter.update(False)
        counter.update(False)
        assert counter.predict() is False

    def test_hysteresis(self):
        # From strongly taken, one not-taken outcome keeps predict=taken.
        counter = SaturatingCounter(state=3)
        counter.update(False)
        assert counter.predict() is True

    def test_saturation(self):
        counter = SaturatingCounter(state=3)
        for _ in range(10):
            counter.update(True)
        assert counter.state == 3
        for _ in range(10):
            counter.update(False)
        assert counter.state == 0

    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(nbits=2, state=4)

    @given(st.lists(st.booleans(), max_size=60))
    def test_matches_automaton_tables(self, outcomes):
        """The scalar counter and the automaton tables must agree —
        this is the consistency the vectorized engine relies on."""
        counter = SaturatingCounter()
        table = counter_transitions(2)
        outputs = counter_outputs(2)
        state = counter_init_state(2)
        for taken in outcomes:
            assert counter.predict() == bool(outputs[state])
            counter.update(taken)
            state = int(table[int(taken), state])
        assert counter.state == state


class TestCounterBank:
    def test_independent_counters(self):
        bank = CounterBank(4)
        bank.update(0, False)
        bank.update(0, False)
        assert bank.predict(0) is False
        assert bank.predict(1) is True

    def test_reset(self):
        bank = CounterBank(4)
        bank.update(2, False)
        bank.update(2, False)
        bank.reset()
        assert bank.predict(2) is True

    def test_storage_bits(self):
        assert CounterBank(1024, nbits=2).storage_bits == 2048

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterBank(0)

    def test_bad_init_state_rejected(self):
        with pytest.raises(ValueError):
            CounterBank(4, nbits=2, init_state=7)

    @given(st.lists(st.booleans(), max_size=40))
    @settings(max_examples=30)
    def test_bank_matches_scalar_counter(self, outcomes):
        bank = CounterBank(8)
        counter = SaturatingCounter()
        for taken in outcomes:
            assert bank.predict(5) == counter.predict()
            bank.update(5, taken)
            counter.update(taken)
