"""Tests for the seed-replication harness and branch reports."""

import numpy as np
import pytest

from repro.analysis import (
    ReplicatedRate,
    branch_breakdown,
    branch_report,
    concentration,
    replicate_comparison,
    replicate_rate,
    replication_report,
    seeds_for,
    significant_difference,
)
from repro.errors import ConfigurationError
from repro.predictors import make_predictor_spec
from repro.sim import simulate
from repro.sim.results import SimulationResult
from repro.workloads import make_workload


def make_rep(rates, scheme="bimodal"):
    return ReplicatedRate(
        spec=make_predictor_spec(scheme, cols=64),
        benchmark="b",
        rates=tuple(rates),
    )


class TestReplicatedRate:
    def test_mean_std(self):
        rep = make_rep([0.1, 0.2, 0.3])
        assert rep.mean == pytest.approx(0.2)
        assert rep.std == pytest.approx(0.1)
        assert rep.stderr == pytest.approx(0.1 / np.sqrt(3))

    def test_single_seed_zero_std(self):
        rep = make_rep([0.1])
        assert rep.std == 0.0

    def test_interval_symmetric(self):
        rep = make_rep([0.1, 0.2, 0.3])
        low, high = rep.interval()
        assert low < rep.mean < high
        assert high - rep.mean == pytest.approx(rep.mean - low)


class TestSignificance:
    def test_clear_difference(self):
        a = make_rep([0.05, 0.051, 0.049])
        b = make_rep([0.20, 0.21, 0.19])
        assert significant_difference(a, b) is True
        assert significant_difference(b, a) is False

    def test_overlap_is_none(self):
        a = make_rep([0.10, 0.20, 0.15])
        b = make_rep([0.12, 0.18, 0.16])
        assert significant_difference(a, b) is None


class TestReplicateRate:
    def test_runs_across_seeds(self):
        spec = make_predictor_spec("bimodal", cols=256)
        rep = replicate_rate(spec, "compress", seeds=[1, 2, 3],
                             length=4_000)
        assert len(rep.rates) == 3
        assert 0 < rep.mean < 1
        # Different seeds give different (but nearby) rates.
        assert rep.std > 0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate_rate(
                make_predictor_spec("bimodal", cols=16), "compress",
                seeds=[], length=100,
            )

    def test_comparison_detects_real_gap(self):
        """PAs(inf) vs always-taken must separate beyond noise."""
        a, b, verdict = replicate_comparison(
            make_predictor_spec("pag", rows=256),
            make_predictor_spec("static", static_policy="taken"),
            "compress",
            seeds=[1, 2, 3],
            length=6_000,
        )
        assert verdict is True  # a significantly better

    def test_report_renders(self):
        rep = make_rep([0.1, 0.2])
        text = replication_report([rep])
        assert "halfwidth" in text and "bimodal" in text

    def test_report_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            replication_report([])

    def test_seeds_for(self):
        assert seeds_for(3) == [100, 101, 102]
        with pytest.raises(ConfigurationError):
            seeds_for(0)


class TestBranchReport:
    @pytest.fixture(scope="class")
    def sim(self):
        trace = make_workload("compress", length=8_000, seed=4)
        result = simulate(make_predictor_spec("bimodal", cols=64), trace)
        return result, trace

    def test_breakdown_sums_to_total(self, sim):
        result, trace = sim
        records = branch_breakdown(result, trace)
        assert sum(r.mispredictions for r in records) == (
            result.mispredictions
        )
        assert sum(r.executions for r in records) == len(trace)

    def test_sorted_by_contribution(self, sim):
        result, trace = sim
        records = branch_breakdown(result, trace)
        misses = [r.mispredictions for r in records]
        assert misses == sorted(misses, reverse=True)

    def test_length_mismatch_rejected(self, sim):
        result, trace = sim
        with pytest.raises(ConfigurationError):
            branch_breakdown(result, trace.slice(0, 10))

    def test_concentration(self, sim):
        result, trace = sim
        records = branch_breakdown(result, trace)
        half = concentration(records, 0.5)
        assert 1 <= half <= len(records)
        assert concentration(records, 1.0) <= len(records)

    def test_concentration_validation(self):
        with pytest.raises(ConfigurationError):
            concentration([], 0.5)

    def test_concentration_no_misses(self):
        record = SimulationResult(
            spec=make_predictor_spec("bimodal", cols=4),
            trace_name="t",
            predictions=np.array([True]),
            taken=np.array([True]),
        )
        from repro.traces import BranchTrace

        trace = BranchTrace.from_records([(0x100, True)])
        records = branch_breakdown(record, trace)
        assert concentration(records, 0.5) == 0

    def test_report_renders(self, sim):
        result, trace = sim
        text = branch_report(result, trace, top=5)
        assert "share of misses" in text
        assert "produce half" in text
