"""Tests for benchmark profiles and weight construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    BUCKET_SHARES,
    FOCUS_BENCHMARKS,
    IBS_BENCHMARKS,
    PROFILES,
    SPEC_BENCHMARKS,
    BehaviorMix,
    bucket_weights,
    derive_buckets,
    get_profile,
)


class TestProfileSuite:
    def test_fourteen_benchmarks(self):
        assert len(PROFILES) == 14
        assert len(SPEC_BENCHMARKS) == 6
        assert len(IBS_BENCHMARKS) == 8

    def test_focus_benchmarks_exist(self):
        for name in FOCUS_BENCHMARKS:
            assert name in PROFILES

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_table2_rows_verbatim(self):
        assert get_profile("espresso").buckets == (12, 93, 296, 1376)
        assert get_profile("mpeg_play").buckets == (64, 466, 1372, 3694)
        assert get_profile("real_gcc").buckets == (327, 2877, 6398, 5749)

    def test_sdet_hot_count_from_paper_text(self):
        # "only 8 distinct branches account for 50% of its dynamic
        # instances"
        assert get_profile("sdet").buckets[0] == 8

    def test_derived_buckets_cover_n90(self):
        for name, profile in PROFILES.items():
            n90ish = profile.buckets[0] + profile.buckets[1]
            assert n90ish == pytest.approx(
                profile.paper_branches_for_90pct, rel=0.25
            ), name

    def test_ibs_profiles_have_kernel_text(self):
        for name in IBS_BENCHMARKS:
            assert get_profile(name).kernel_fraction > 0
        for name in SPEC_BENCHMARKS:
            assert get_profile(name).kernel_fraction == 0

    def test_branch_fractions_match_table1(self):
        assert get_profile("eqntott").branch_fraction == pytest.approx(0.246)
        assert get_profile("mpeg_play").branch_fraction == pytest.approx(0.096)


class TestBehaviorMix:
    def test_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            BehaviorMix(0.5, 0.5, 0.5, 0.0, 0.0)

    def test_probability_tuples(self):
        mix = BehaviorMix(0.4, 0.3, 0.1, 0.1, 0.1)
        names, probs = zip(*mix.as_probabilities())
        assert sum(probs) == pytest.approx(1.0)
        assert "correlated" in names


class TestBucketWeights:
    def test_normalized_and_descending(self):
        w = bucket_weights((12, 93, 296, 1376))
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) <= 1e-15).all()

    def test_bucket_shares_realized(self):
        buckets = (12, 93, 296, 1376)
        w = bucket_weights(buckets)
        cut1 = w[: buckets[0]].sum()
        cut2 = w[buckets[0] : buckets[0] + buckets[1]].sum()
        assert cut1 == pytest.approx(0.50, abs=0.01)
        assert cut2 == pytest.approx(0.40, abs=0.01)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            bucket_weights((1, 2), shares=(0.5, 0.4, 0.1))

    def test_nonpositive_bucket_rejected(self):
        with pytest.raises(WorkloadError):
            bucket_weights((0, 1, 1, 1))

    @given(
        st.tuples(
            st.integers(1, 40),
            st.integers(1, 200),
            st.integers(1, 500),
            st.integers(1, 2000),
        )
    )
    @settings(max_examples=30)
    def test_any_buckets_yield_valid_distribution(self, buckets):
        w = bucket_weights(buckets)
        assert len(w) == sum(buckets)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()


class TestDeriveBuckets:
    def test_partitions_population(self):
        buckets = derive_buckets(5000, 500)
        assert sum(buckets) == 5000
        assert buckets[0] + buckets[1] == 500

    def test_hot_count_override(self):
        buckets = derive_buckets(5310, 506, hot_count=8)
        assert buckets[0] == 8
        assert sum(buckets) == 5310

    def test_rejects_inconsistent_inputs(self):
        with pytest.raises(WorkloadError):
            derive_buckets(100, 100)

    @given(st.integers(20, 30_000), st.data())
    @settings(max_examples=40)
    def test_always_positive_buckets(self, static, data):
        n90 = data.draw(st.integers(2, static - 2))
        buckets = derive_buckets(static, n90)
        assert all(b >= 1 for b in buckets)
        assert sum(buckets) == static

    def test_share_constants(self):
        assert sum(BUCKET_SHARES) == pytest.approx(1.0)
