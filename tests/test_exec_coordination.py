"""Coordination-backend and fencing tests.

The tentpole contract: shard leases are pluggable (pid-probe locally,
heartbeat renewal on shared filesystems), every claim/reclaim mints a
monotonically increasing fencing token, and the merge layer rejects
journal lines stamped with a superseded token — so a paused-and-resumed
zombie worker can never corrupt results, only waste its own time.
"""

import json
import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.exec import leases, merge
from repro.exec.leases import (
    CLOCK_SKEW_ALLOWANCE_S,
    HeartbeatBackend,
    LocalPidBackend,
    OwnerId,
    ShardLease,
    default_ttl_s,
    lease_path,
    make_backend,
    read_fence_table,
)
from repro.exec.worker import WorkerPlan, compute_point
from repro.obs import reset_metrics, snapshot
from repro.runtime import clear_faults, install_faults
from repro.runtime.checkpoint import CheckpointJournal, atomic_write_text
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload
from repro.workloads.store import TraceStore


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_LEASE_TTL_S", raising=False)
    clear_faults()
    reset_metrics()
    yield
    clear_faults()
    reset_metrics()


@pytest.fixture(scope="module")
def trace():
    return make_workload("compress", length=2_000, seed=2)


def counters():
    return snapshot()["counters"]


class TestBackendSelection:
    def test_make_backend_by_name(self, tmp_path):
        assert isinstance(
            make_backend("local", str(tmp_path)), LocalPidBackend
        )
        assert isinstance(
            make_backend("heartbeat", str(tmp_path)), HeartbeatBackend
        )

    def test_env_selects_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "heartbeat")
        assert isinstance(
            make_backend(None, str(tmp_path)), HeartbeatBackend
        )
        assert isinstance(
            make_backend("", str(tmp_path)), HeartbeatBackend
        )

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_backend("zookeeper", str(tmp_path))

    def test_ttl_resolution(self, monkeypatch):
        assert default_ttl_s(1.5) == 1.5
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "2.5")
        assert default_ttl_s() == 2.5
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "nonsense")
        assert default_ttl_s() == leases.DEFAULT_LEASE_TTL_S


class TestFencingTokens:
    def test_first_claim_mints_token_one(self, tmp_path):
        backend = HeartbeatBackend(str(tmp_path))
        lease = backend.try_claim(0)
        assert lease is not None and lease.token == 1
        assert read_fence_table(str(tmp_path)) == {0: 1}

    def test_live_lease_is_not_reclaimable(self, tmp_path):
        a = HeartbeatBackend(str(tmp_path), ttl_s=600.0)
        b = HeartbeatBackend(str(tmp_path), ttl_s=600.0)
        assert a.try_claim(0) is not None
        assert b.try_claim(0) is None

    def test_reclaims_mint_monotonic_tokens(self, tmp_path):
        a = HeartbeatBackend(str(tmp_path), ttl_s=0.0)
        assert a.try_claim(0).token == 1
        for expected in (2, 3, 4):
            lease = HeartbeatBackend(str(tmp_path), ttl_s=0.0).try_claim(0)
            assert lease is not None and lease.token == expected
        assert read_fence_table(str(tmp_path)) == {0: 4}

    def test_corrupt_lease_does_not_reset_tokens(self, tmp_path):
        a = HeartbeatBackend(str(tmp_path), ttl_s=0.0)
        assert a.try_claim(0).token == 1
        assert HeartbeatBackend(str(tmp_path), ttl_s=0.0).try_claim(0).token == 2
        # Mangle the lease file: the generation markers still carry the
        # high-water mark, so the next token must be 3, not 2 again.
        atomic_write_text(lease_path(str(tmp_path), 0), "garbage\n")
        lease = HeartbeatBackend(str(tmp_path), ttl_s=0.0).try_claim(0)
        assert lease is not None and lease.token == 3

    def test_nonce_readback_rejects_raced_write(self, tmp_path, monkeypatch):
        stale_dir = str(tmp_path)
        HeartbeatBackend(stale_dir, ttl_s=0.0).try_claim(0)
        reclaimer = HeartbeatBackend(stale_dir, ttl_s=0.0)
        real_write = leases.atomic_write_text

        def raced_write(path, text):
            real_write(path, text)
            if path == lease_path(stale_dir, 0):
                # A concurrent reclaimer replaces our payload between
                # our write and our readback.
                payload = json.loads(text)
                payload["nonce"] = "someone-else"
                real_write(path, json.dumps(payload) + "\n")

        monkeypatch.setattr(leases, "atomic_write_text", raced_write)
        before = counters()["exec.leases_reclaimed"]
        assert reclaimer.try_claim(0) is None
        assert counters()["exec.leases_reclaimed"] == before


class TestStaleness:
    def _write_lease(self, directory, shard_id, **overrides):
        payload = {
            "backend": "heartbeat",
            "host": "h",
            "pid": os.getpid(),
            "nonce": "abc",
            "status": "claimed",
            "token": 1,
            "claimed_at": time.time(),
            "heartbeat_at": time.time(),
            "heartbeat_seq": 0,
        }
        payload.update(overrides)
        atomic_write_text(
            lease_path(directory, shard_id), json.dumps(payload) + "\n"
        )
        return payload

    def test_heartbeat_expiry_makes_stale(self, tmp_path):
        backend = HeartbeatBackend(str(tmp_path), ttl_s=0.5)
        self._write_lease(
            str(tmp_path), 0, heartbeat_at=time.time() - 1.0
        )
        assert backend.is_stale(leases.read_lease(str(tmp_path), 0))

    def test_fresh_heartbeat_is_honored(self, tmp_path):
        backend = HeartbeatBackend(str(tmp_path), ttl_s=600.0)
        self._write_lease(str(tmp_path), 0)
        assert not backend.is_stale(leases.read_lease(str(tmp_path), 0))

    def test_future_dated_lease_is_stale(self, tmp_path):
        # A clock skewed far into the future must never *extend* a
        # lease; beyond the small allowance the lease is reclaimable.
        future = time.time() + CLOCK_SKEW_ALLOWANCE_S + 60.0
        self._write_lease(
            str(tmp_path), 0, heartbeat_at=future, claimed_at=future
        )
        lease = leases.read_lease(str(tmp_path), 0)
        assert HeartbeatBackend(str(tmp_path), ttl_s=600.0).is_stale(lease)
        assert LocalPidBackend(str(tmp_path), ttl_s=600.0).is_stale(lease)

    def test_small_future_skew_is_tolerated(self, tmp_path):
        near = time.time() + CLOCK_SKEW_ALLOWANCE_S / 2.0
        self._write_lease(
            str(tmp_path), 0, heartbeat_at=near, claimed_at=near
        )
        lease = leases.read_lease(str(tmp_path), 0)
        assert not HeartbeatBackend(str(tmp_path), ttl_s=600.0).is_stale(lease)

    def test_done_lease_never_stale(self, tmp_path):
        self._write_lease(
            str(tmp_path),
            0,
            status="done",
            heartbeat_at=time.time() - 9_999.0,
        )
        lease = leases.read_lease(str(tmp_path), 0)
        assert not HeartbeatBackend(str(tmp_path), ttl_s=0.0).is_stale(lease)

    def test_missing_stamp_is_stale(self, tmp_path):
        self._write_lease(str(tmp_path), 0, heartbeat_at="not-a-number")
        assert HeartbeatBackend(str(tmp_path), ttl_s=600.0).is_stale(
            leases.read_lease(str(tmp_path), 0)
        )

    def test_stale_clock_fault_future_dates_the_claim(self, tmp_path):
        install_faults("lease.claim:stale-clock(600)")
        skewed = HeartbeatBackend(str(tmp_path), ttl_s=600.0)
        assert skewed.try_claim(0) is not None
        clear_faults()
        # The skewed host recorded a timestamp 10 minutes ahead; an
        # unskewed peer treats the lease as stale and reclaims it.
        peer = HeartbeatBackend(str(tmp_path), ttl_s=600.0)
        lease = peer.try_claim(0)
        assert lease is not None and lease.token == 2


class TestHeartbeat:
    def test_heartbeat_renews_and_numbers(self, tmp_path):
        backend = HeartbeatBackend(str(tmp_path))
        lease = backend.try_claim(0)
        before = counters()["lease.heartbeats"]
        renewed = backend.heartbeat(lease)
        assert renewed is not None and renewed.heartbeat_seq == 1
        renewed = backend.heartbeat(renewed)
        assert renewed.heartbeat_seq == 2
        payload = leases.read_lease(str(tmp_path), 0)
        assert payload["heartbeat_seq"] == 2
        assert counters()["lease.heartbeats"] == before + 2

    def test_heartbeat_after_reclaim_reports_loss(self, tmp_path):
        owner = HeartbeatBackend(str(tmp_path), ttl_s=0.0)
        lease = owner.try_claim(0)
        thief = HeartbeatBackend(str(tmp_path), ttl_s=0.0)
        assert thief.try_claim(0) is not None
        assert owner.heartbeat(lease) is None

    def test_heartbeat_on_vanished_lease_reports_loss(self, tmp_path):
        backend = HeartbeatBackend(str(tmp_path))
        lease = backend.try_claim(0)
        os.remove(lease_path(str(tmp_path), 0))
        assert backend.heartbeat(lease) is None


class TestFencedMerge:
    """The acceptance scenario: a shard lease reclaimed mid-shard (the
    owner paused by a ``delay`` fault) leaves the zombie's stamped
    appends fenced out of the merge, and results stay byte-identical
    to a serial run."""

    def test_zombie_appends_are_fenced_and_results_identical(
        self, trace, tmp_path
    ):
        serial = sweep_tiers("gas", trace, size_bits=[4])
        reference = {
            (4, p.row_bits): (
                p.col_bits,
                p.row_bits,
                p.misprediction_rate,
                p.aliasing_rate,
                p.first_level_miss_rate,
            )
            for p in serial.tiers[4]
        }
        points = sorted(reference)

        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        store = TraceStore(os.path.join(scratch, "traces"))
        plan = WorkerPlan(
            worker_id=0,
            scheme="gas",
            trace_path=store.put(trace),
            shards=(),
            scratch_dir=scratch,
            journal_key="fence-test",
        )

        def journal_for(worker_id):
            return CheckpointJournal.open(
                os.path.join(scratch, f"worker-{worker_id:04d}.journal"),
                "fence-test",
                resume=True,
            )

        # Worker A claims the shard and journals two stamped points.
        a = HeartbeatBackend(scratch, ttl_s=0.05)
        lease_a = a.try_claim(0)
        assert lease_a.token == 1
        journal_a = journal_for(0)
        for n, row_bits in points[:2]:
            point = compute_point(plan, trace, n, row_bits)
            journal_a.append(n, point, token=lease_a.token, shard=0)

        # A is descheduled past its TTL (the delay fault), and B
        # reclaims the shard mid-flight with the next fencing token.
        install_faults("exec.worker:delay(0.08)")
        from repro.runtime.faults import maybe_inject

        maybe_inject("exec.worker")
        clear_faults()
        b = HeartbeatBackend(scratch, ttl_s=0.05)
        lease_b = b.try_claim(0)
        assert lease_b is not None and lease_b.token == 2
        journal_b = journal_for(1)
        for n, row_bits in points:
            point = compute_point(plan, trace, n, row_bits)
            journal_b.append(n, point, token=lease_b.token, shard=0)
        b.mark_done(lease_b)

        # The zombie wakes and appends one more point with its stale
        # token, then discovers the loss at its next heartbeat.
        n, row_bits = points[2]
        point = compute_point(plan, trace, n, row_bits)
        journal_a.append(n, point, token=lease_a.token, shard=0)
        assert a.heartbeat(lease_a) is None

        # Merge: every token-1 line is fenced; B's full shard survives
        # and reproduces the serial results exactly.
        before = counters()["lease.fence_rejections"]
        merged = merge.load_worker_points(scratch, "fence-test")
        assert counters()["lease.fence_rejections"] == before + 3
        assert sorted(merged) == points
        for key, (n, point) in merged.items():
            assert reference[key] == (
                point.col_bits,
                point.row_bits,
                point.misprediction_rate,
                point.aliasing_rate,
                point.first_level_miss_rate,
            )

    def test_unstamped_lines_are_never_fenced(self, tmp_path, trace):
        # Pre-fencing journals (and the master journal) carry no
        # token/shard stamps; the fence must pass them through.
        scratch = str(tmp_path)
        backend = HeartbeatBackend(scratch, ttl_s=0.0)
        backend.try_claim(0)
        HeartbeatBackend(scratch, ttl_s=0.0).try_claim(0)  # fence at 2
        journal = CheckpointJournal.open(
            os.path.join(scratch, "worker-0000.journal"), "k", resume=True
        )
        plan = WorkerPlan(
            worker_id=0,
            scheme="gshare",
            trace_path="",
            shards=(),
            scratch_dir=scratch,
            journal_key="k",
        )
        point = compute_point(plan, trace, 4, 0)
        journal.append(4, point)  # no stamp
        merged = merge.load_worker_points(scratch, "k")
        assert (4, 0) in merged


class TestWorkerZombiePath:
    def test_worker_abandons_reclaimed_shard(self, tmp_path, trace):
        """Drive ``_run_shards`` directly: the owner's heartbeat fails
        after a reclaim, so it abandons the shard without mark_done."""
        from repro.exec.worker import _run_shards

        scratch = str(tmp_path)
        store = TraceStore(os.path.join(scratch, "traces"))
        trace_path = store.put(trace)
        # Claim the shard out from under the worker-to-be by an owner
        # whose nonce the worker can never renew.
        backend = HeartbeatBackend(scratch, ttl_s=600.0)
        other = backend.try_claim(0)
        assert other is not None
        plan = WorkerPlan(
            worker_id=7,
            scheme="gshare",
            trace_path=trace_path,
            shards=((0, ((4, 0), (4, 1))),),
            scratch_dir=scratch,
            journal_key="z",
            lease_ttl_s=600.0,
            backend="heartbeat",
        )
        _run_shards(plan)  # cannot claim: lease is live -> no points
        merged = merge.load_worker_points(scratch, "z")
        assert merged == {}
        payload = leases.read_lease(scratch, 0)
        assert payload["status"] == "claimed"  # never marked done
