"""Bytecode CFG extraction: block invariants + golden skeletons.

The golden fixtures pin :func:`repro.cfg.structure.branch_skeleton` —
the *shape* of each function's control flow (branch classes, taken
direction, loop skeleton) — which is identical on every supported
CPython (3.10–3.12) for the straightforward for/if functions below.
Raw offsets and opcode names are version-specific and deliberately
not pinned. while-loops are excluded: 3.12 rotates them (condition
at the bottom), flipping the branch class, so they are not
skeleton-stable.
"""

import dis
import json
import textwrap

import pytest

from repro.cfg.bytecode import (
    code_key,
    extract_cfg,
    get_instructions,
    iter_code_objects,
    opcode_sets,
)
from repro.cfg.structure import branch_skeleton
from repro.errors import AnalysisError

# -- golden-fixture functions (bodies are part of the fixture) --------


def count_even(data):
    n = 0
    for x in data:
        if x % 2 == 0:
            n += 1
    return n


def classify(x):
    if x < 0:
        return "neg"
    elif x == 0:
        return "zero"
    elif x < 10:
        return "small"
    return "big"


def clamp_sum(values, lo, hi):
    total = 0
    for v in values:
        if v < lo:
            total += lo
        elif v > hi:
            total += hi
        else:
            total += v
    return total


def find_pair(items, total):
    for i in range(len(items)):
        for j in range(len(items)):
            if items[i] + items[j] == total:
                return (i, j)
    return None


def count_words(text):
    count = 0
    in_word = False
    for ch in text:
        if ch == " " or ch == "\n":
            if in_word:
                count += 1
            in_word = False
        else:
            in_word = True
    if in_word:
        count += 1
    return count


#: branch tuple entries are (class, taken-edge-points-backward).
GOLDEN_SKELETONS = {
    count_even: {
        "branches": (("loop-exit", False), ("guard", False)),
        "num_loops": 1,
        "max_nesting": 1,
        "reducible": True,
    },
    classify: {
        "branches": (
            ("guard", False),
            ("guard", False),
            ("guard", False),
        ),
        "num_loops": 0,
        "max_nesting": 0,
        "reducible": True,
    },
    clamp_sum: {
        "branches": (
            ("loop-exit", False),
            ("guard", False),
            ("guard", False),
        ),
        "num_loops": 1,
        "max_nesting": 1,
        "reducible": True,
    },
    find_pair: {
        "branches": (
            ("loop-exit", False),
            ("loop-exit", False),
            ("loop-exit", False),
        ),
        "num_loops": 2,
        "max_nesting": 2,
        "reducible": True,
    },
    count_words: {
        "branches": (
            ("loop-exit", False),
            ("guard", False),
            ("guard", False),
            ("guard", False),
            ("guard", False),
        ),
        "num_loops": 1,
        "max_nesting": 1,
        "reducible": True,
    },
}


class TestGoldenSkeletons:
    @pytest.mark.parametrize(
        "function", GOLDEN_SKELETONS, ids=lambda f: f.__name__
    )
    def test_skeleton_matches_pin(self, function):
        cfg = extract_cfg(function.__code__)
        assert branch_skeleton(cfg) == GOLDEN_SKELETONS[function]

    def test_skeletons_are_json_stable(self):
        # The skeleton is the cross-version fixture format: it must
        # round-trip through JSON without losing identity.
        for function in GOLDEN_SKELETONS:
            skeleton = branch_skeleton(extract_cfg(function.__code__))
            encoded = json.dumps(
                {**skeleton, "branches": [list(b) for b in skeleton["branches"]]}
            )
            decoded = json.loads(encoded)
            assert (
                tuple(tuple(b) for b in decoded["branches"])
                == skeleton["branches"]
            )


def _sample_functions():
    """A spread of extraction subjects, local and stdlib."""
    import fnmatch
    import posixpath
    import string
    import textwrap as textwrap_mod

    return [
        count_even,
        classify,
        clamp_sum,
        find_pair,
        count_words,
        string.capwords,
        fnmatch.translate,
        posixpath.normpath,
        posixpath.join,
        textwrap_mod.dedent,
        textwrap_mod.indent,
        json.loads,
    ]


class TestCfgInvariants:
    @pytest.mark.parametrize(
        "function", _sample_functions(), ids=lambda f: f.__name__
    )
    def test_blocks_partition_the_code(self, function):
        code = function.__code__
        cfg = extract_cfg(code)
        instructions = get_instructions(code)
        offsets = {ins.offset for ins in instructions}
        assert cfg.num_blocks >= 1
        starts = [block.start for block in cfg.blocks]
        assert starts == sorted(starts)
        assert starts[0] == 0
        # Every real instruction offset falls inside exactly one block.
        for ins in instructions:
            block = cfg.block_at(ins.offset)
            assert block.start <= ins.offset < block.end
        # Block starts are themselves instruction offsets.
        for block in cfg.blocks:
            assert block.start in offsets

    @pytest.mark.parametrize(
        "function", _sample_functions(), ids=lambda f: f.__name__
    )
    def test_edges_reference_valid_blocks(self, function):
        cfg = extract_cfg(function.__code__)
        for src, kind, dst in cfg.edges():
            assert 0 <= src < cfg.num_blocks
            assert 0 <= dst < cfg.num_blocks
            assert kind in ("taken", "fall", "jump")
        assert cfg.num_edges == len(cfg.edges())

    @pytest.mark.parametrize(
        "function", _sample_functions(), ids=lambda f: f.__name__
    )
    def test_branch_sites_are_ordinal_ordered(self, function):
        cfg = extract_cfg(function.__code__)
        for expected, site in enumerate(cfg.branch_sites):
            assert site.ordinal == expected
            assert site.taken_target != site.fallthrough
            assert cfg.site_at(site.offset) is site
        offsets = [site.offset for site in cfg.branch_sites]
        assert offsets == sorted(offsets)

    def test_site_at_misses_return_none(self):
        cfg = extract_cfg(count_even.__code__)
        taken = {site.offset for site in cfg.branch_sites}
        for ins in get_instructions(count_even.__code__):
            if ins.offset not in taken:
                assert cfg.site_at(ins.offset) is None

    def test_block_at_rejects_outside_offsets(self):
        cfg = extract_cfg(classify.__code__)
        with pytest.raises(AnalysisError):
            cfg.block_at(10_000)

    def test_branchless_function_has_no_sites(self):
        def straight(a, b):
            return a + b * 2

        cfg = extract_cfg(straight.__code__)
        assert cfg.branch_sites == ()
        assert cfg.num_blocks >= 1


class TestCodeObjectHelpers:
    def test_iter_code_objects_finds_nested(self):
        source = textwrap.dedent(
            """
            def outer(xs):
                def inner(y):
                    return y + 1
                return [inner(x) for x in xs]
            """
        )
        namespace = {}
        exec(compile(source, "<fixture>", "exec"), namespace)
        codes = list(iter_code_objects(namespace["outer"].__code__))
        names = {code.co_name for code in codes}
        assert "outer" in names
        assert "inner" in names

    def test_code_key_is_stable_and_descriptive(self):
        key = code_key(count_even.__code__)
        assert key[0].endswith("test_cfg_bytecode.py")
        assert "count_even" in key[1]
        assert key == code_key(count_even.__code__)

    def test_opcode_sets_cover_this_interpreter(self):
        sets = opcode_sets()
        # Each bytecode in the conditional vocabulary must resolve to a
        # real opcode on the running interpreter and be jump-ish.
        assert sets.conditional
        for opcode in sets.conditional:
            assert dis.opname[opcode] != "<invalid>"
