"""Tests for the analysis subpackage."""

import numpy as np
import pytest

from repro.analysis import (
    best_configurations,
    diff_surfaces,
    per_branch_misprediction,
    render_series,
    render_surface,
    render_surface_grid,
    warmup_trimmed_rate,
)
from repro.analysis.best_config import TABLE3_SIZE_BITS, crossover_size
from repro.errors import ConfigurationError
from repro.predictors import make_predictor_spec
from repro.sim.results import SimulationResult, TierPoint, TierSurface


def make_surface(scheme, name, rates_by_tier):
    """rates_by_tier: {n: [rate for row_bits 0..n]}"""
    surface = TierSurface(scheme=scheme, trace_name=name)
    for n, rates in rates_by_tier.items():
        for row_bits, rate in enumerate(rates):
            surface.add(
                n,
                TierPoint(
                    col_bits=n - row_bits,
                    row_bits=row_bits,
                    misprediction_rate=rate,
                ),
            )
    return surface


class TestMetrics:
    def make_result(self):
        return SimulationResult(
            spec=make_predictor_spec("bimodal", cols=4),
            trace_name="t",
            predictions=np.array([True, False, True, True]),
            taken=np.array([True, True, True, False]),
        )

    def test_per_branch_misprediction(self):
        result = self.make_result()
        pc = np.array([0x100, 0x100, 0x200, 0x200], dtype=np.uint64)
        rates = per_branch_misprediction(result, pc)
        assert rates[0x100] == 0.5
        assert rates[0x200] == 0.5

    def test_per_branch_length_checked(self):
        with pytest.raises(ConfigurationError):
            per_branch_misprediction(
                self.make_result(), np.array([0x100], dtype=np.uint64)
            )

    def test_warmup_trim(self):
        result = self.make_result()
        # Full rate 2/4; trimming the first 25% removes one correct
        # prediction -> 2/3.
        assert warmup_trimmed_rate(result, 0.25) == pytest.approx(2 / 3)

    def test_warmup_bounds(self):
        with pytest.raises(ConfigurationError):
            warmup_trimmed_rate(self.make_result(), 1.0)


class TestDiffSurfaces:
    def test_signs_follow_paper_convention(self):
        gas = make_surface("gas", "t", {4: [0.10] * 5})
        gshare = make_surface("gshare", "t", {4: [0.08] * 5})
        grid = diff_surfaces(gas, gshare)
        # gshare better -> positive percentage points.
        assert grid.cell(4, 2) == pytest.approx(2.0)
        assert len(grid.positive_cells()) == 5

    def test_mean_abs(self):
        gas = make_surface("gas", "t", {4: [0.10] * 5})
        gshare = make_surface("gshare", "t", {4: [0.09] * 5})
        grid = diff_surfaces(gas, gshare)
        assert grid.mean_abs_difference() == pytest.approx(1.0)

    def test_trace_mismatch_rejected(self):
        a = make_surface("gas", "t1", {4: [0.1] * 5})
        b = make_surface("gshare", "t2", {4: [0.1] * 5})
        with pytest.raises(ConfigurationError):
            diff_surfaces(a, b)

    def test_tier_mismatch_rejected(self):
        a = make_surface("gas", "t", {4: [0.1] * 5})
        b = make_surface("gshare", "t", {5: [0.1] * 6})
        with pytest.raises(ConfigurationError):
            diff_surfaces(a, b)

    def test_missing_cell_rejected(self):
        a = make_surface("gas", "t", {4: [0.1] * 5})
        b = make_surface("gshare", "t", {4: [0.1] * 5})
        grid = diff_surfaces(a, b)
        with pytest.raises(ConfigurationError):
            grid.cell(4, 9)


class TestBestConfigurations:
    def surfaces(self):
        tiers = {
            n: [0.10 - 0.002 * r for r in range(n + 1)]
            for n in TABLE3_SIZE_BITS
        }
        gas = make_surface("gas", "b", tiers)
        pas = make_surface("pas", "b", tiers)
        # Give pas a first-level miss rate on one point.
        pas.tiers[9][3] = TierPoint(
            col_bits=6, row_bits=3, misprediction_rate=0.2,
            first_level_miss_rate=0.0266,
        )
        return {"GAs": gas, "PAs(1k)": pas}

    def test_rows_and_cells(self):
        rows = best_configurations("b", self.surfaces())
        assert [r.predictor_label for r in rows] == ["GAs", "PAs(1k)"]
        gas_row = rows[0]
        # Monotone rates -> best is the all-rows configuration.
        assert gas_row.best[9].row_bits == 9
        cells = gas_row.cells()
        assert len(cells) == 3
        assert "2^0x2^9" in cells[0]

    def test_miss_rate_propagates(self):
        rows = best_configurations("b", self.surfaces())
        pas_row = rows[1]
        assert pas_row.first_level_miss_rate == pytest.approx(0.0266)

    def test_crossover(self):
        a = make_surface("gas", "t", {4: [0.2] * 5, 6: [0.05] * 7})
        b = make_surface("pas", "t", {4: [0.1] * 5, 6: [0.08] * 7})
        assert crossover_size(a, b, [4, 6]) == 6
        assert crossover_size(b, a, [6]) is None
        with pytest.raises(ConfigurationError):
            crossover_size(a, b, [])


class TestRendering:
    def test_render_surface_marks_best(self):
        surface = make_surface("gas", "t", {4: [0.2, 0.1, 0.3, 0.4, 0.5]})
        text = render_surface(surface)
        assert "10.00*" in text
        assert "2^4" in text

    def test_render_aliasing_value(self):
        surface = TierSurface(scheme="gas", trace_name="t")
        surface.add(
            4,
            TierPoint(
                col_bits=4, row_bits=0, misprediction_rate=0.1,
                aliasing_rate=0.25,
            ),
        )
        text = render_surface(surface, value="aliasing", mark_best=False)
        assert "25.00" in text

    def test_render_unknown_value_rejected(self):
        surface = make_surface("gas", "t", {4: [0.1] * 5})
        with pytest.raises(ConfigurationError):
            render_surface(surface, value="entropy")

    def test_render_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_surface(TierSurface(scheme="gas", trace_name="t"))

    def test_render_grid(self):
        surface = make_surface("gas", "t", {4: [0.1] * 5})
        text = render_surface_grid({"espresso": surface})
        assert "== espresso ==" in text

    def test_render_series(self):
        text = render_series(
            {"espresso": [0.1, 0.05]},
            x_labels=["2^4", "2^5"],
            title="Fig 2",
        )
        assert "Fig 2" in text and "10.00" in text

    def test_render_series_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            render_series({"x": [0.1]}, x_labels=["a", "b"], title="t")
        with pytest.raises(ConfigurationError):
            render_series({}, x_labels=[], title="t")
