"""Run-ledger tests: recording, recovery, history/diff/regress."""

import json

import pytest

from repro.cli import EXIT_ERROR, main
from repro.errors import ReproError
from repro.obs import get_tracer, reset_metrics
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    append_entry,
    consume_sweep_keys,
    diff_rows,
    git_revision,
    load_entries,
    note_sweep_key,
    record_run,
    recover_ledger,
    regress_report,
    render_diff,
    render_history,
    resolve_ledger_path,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    reset_metrics()
    get_tracer().reset()
    yield
    get_tracer().reset()
    reset_metrics()


@pytest.fixture
def ledger(tmp_path):
    """The per-test ledger path installed by the suite conftest."""
    return str(tmp_path / "ledger.jsonl")


def add_run(bench, bps, rev="r1", monkeypatch=None, **kwargs):
    if monkeypatch is not None:
        monkeypatch.setenv("REPRO_GIT_REV", rev)
    return record_run(
        bench, branches_per_sec=bps, wall_s=1.0, engine="vectorized", **kwargs
    )


class TestRecording:
    def test_record_run_round_trips(self, ledger):
        entry = add_run("fig2", 1e6)
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["git_rev"] == "testrev"  # pinned by conftest
        entries, bad = load_entries(ledger)
        assert bad == []
        assert len(entries) == 1
        assert entries[0]["bench"] == "fig2"
        assert entries[0]["branches_per_sec"] == 1e6
        assert entries[0]["workers"] == 1
        assert "counters" in entries[0] and "histograms" in entries[0]

    def test_empty_env_disables_recording(self, monkeypatch, ledger):
        monkeypatch.setenv("REPRO_LEDGER", "")
        assert resolve_ledger_path() is None
        assert record_run("fig2") is None
        assert load_entries(ledger) == ([], [])

    def test_explicit_path_beats_env(self, tmp_path):
        other = tmp_path / "elsewhere.jsonl"
        add_run("fig2", 1.0, path=str(other))
        entries, _ = load_entries(str(other))
        assert len(entries) == 1

    def test_sweep_keys_consumed_into_entry(self, ledger):
        note_sweep_key("abc123")
        note_sweep_key("abc123")  # deduplicated
        entry = add_run("fig2", 1.0)
        assert entry["sweep_keys"] == ["abc123"]
        assert consume_sweep_keys() == []  # consumed exactly once

    def test_git_revision_env_override(self):
        assert git_revision() == "testrev"

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_entries(str(tmp_path / "absent.jsonl")) == ([], [])


class TestRecovery:
    def test_torn_tail_skipped_on_load(self, ledger):
        add_run("fig2", 1.0)
        add_run("fig2", 2.0)
        with open(ledger, "a", encoding="ascii") as handle:
            handle.write('{"schema": "repro.ledger/1", "torn')
        entries, bad = load_entries(ledger)
        assert len(entries) == 2
        assert bad == [3]

    def test_recover_quarantines_and_truncates(self, ledger):
        add_run("fig2", 1.0)
        with open(ledger, "a", encoding="ascii") as handle:
            handle.write("garbage\n")
        dropped = recover_ledger(ledger)
        assert dropped == 1
        entries, bad = load_entries(ledger)
        assert len(entries) == 1 and bad == []
        quarantine = ledger + ".quarantine"
        assert "garbage" in open(quarantine, encoding="ascii").read()

    def test_recover_noop_on_clean_ledger(self, ledger):
        add_run("fig2", 1.0)
        assert recover_ledger(ledger) == 0

    def test_append_recovers_torn_tail_first(self, ledger):
        add_run("fig2", 1.0)
        with open(ledger, "a", encoding="ascii") as handle:
            handle.write('{"half')
        add_run("fig2", 2.0)
        entries, bad = load_entries(ledger)
        assert bad == []
        assert [e["branches_per_sec"] for e in entries] == [1.0, 2.0]

    def test_crc_tamper_detected(self, ledger):
        add_run("fig2", 1.0)
        text = open(ledger, encoding="ascii").read()
        with open(ledger, "w", encoding="ascii") as handle:
            handle.write(text.replace('"bench": "fig2"', '"bench": "fig9"'))
        entries, bad = load_entries(ledger)
        assert entries == [] and bad == [1]


class TestQueries:
    def test_render_history_table_and_empty(self, monkeypatch, ledger):
        assert render_history([]) == "(ledger empty)"
        add_run("fig2", 1e6, rev="aaa", monkeypatch=monkeypatch)
        add_run("fig3", 2e6, rev="bbb", monkeypatch=monkeypatch)
        entries, _ = load_entries(ledger)
        text = render_history(entries)
        assert "fig2" in text and "fig3" in text
        assert "aaa" in text and "bbb" in text
        only = render_history(entries, bench="fig3")
        assert "fig3" in only and "fig2" not in only

    def test_diff_rows_latest_per_rev(self, monkeypatch, ledger):
        add_run("fig2", 1000.0, rev="aaa", monkeypatch=monkeypatch)
        add_run("fig2", 1100.0, rev="aaa", monkeypatch=monkeypatch)
        add_run("fig2", 1650.0, rev="bbb", monkeypatch=monkeypatch)
        entries, _ = load_entries(ledger)
        rows = diff_rows(entries, "aaa", "bbb")
        assert len(rows) == 1
        assert rows[0]["aaa"] == 1100.0  # latest aaa run wins
        assert rows[0]["bbb"] == 1650.0
        assert rows[0]["delta_pct"] == pytest.approx(50.0)
        assert "+50.0%" in render_diff(entries, "aaa", "bbb")

    def test_diff_missing_rev_renders_placeholder(self, monkeypatch, ledger):
        add_run("fig2", 1000.0, rev="aaa", monkeypatch=monkeypatch)
        entries, _ = load_entries(ledger)
        text = render_diff(entries, "aaa", "zzz")
        assert "-" in text
        assert render_diff([], "aaa", "zzz").startswith("(no ledger rows")


class TestRegressGate:
    def test_fifty_percent_slowdown_fails(self, ledger):
        for bps in (1000.0, 1010.0, 990.0):
            add_run("fig2", bps)
        add_run("fig2", 500.0)  # injected 50% slowdown
        entries, _ = load_entries(ledger)
        report = regress_report(entries, threshold_pct=10.0)
        assert report.exit_code(strict=False) == 1
        finding = [f for f in report.findings if f.check == "obs.regression"]
        assert len(finding) == 1
        assert finding[0].data["delta_pct"] == pytest.approx(-50.0, abs=2.0)

    def test_steady_throughput_passes(self, ledger):
        for bps in (1000.0, 1010.0, 990.0, 1005.0):
            add_run("fig2", bps)
        entries, _ = load_entries(ledger)
        report = regress_report(entries, threshold_pct=10.0)
        assert report.exit_code(strict=False) == 0
        assert any(f.check == "obs.regress-ok" for f in report.findings)

    def test_single_run_has_no_baseline(self, ledger):
        add_run("fig2", 1000.0)
        entries, _ = load_entries(ledger)
        report = regress_report(entries)
        assert report.exit_code(strict=False) == 0
        assert any(
            f.check == "obs.regress-baseline" for f in report.findings
        )

    def test_empty_ledger_is_informational(self):
        report = regress_report([])
        assert report.exit_code(strict=False) == 0
        assert any(f.check == "obs.regress-empty" for f in report.findings)

    def test_baseline_window_bounds_history(self, ledger):
        # Ancient fast runs fall outside the window; recent history is
        # slow, so the equally slow latest run passes.
        for bps in (9000.0, 9000.0, 1000.0, 1000.0, 1000.0):
            add_run("fig2", bps)
        add_run("fig2", 950.0)
        entries, _ = load_entries(ledger)
        report = regress_report(entries, threshold_pct=10.0, baseline_window=3)
        assert report.exit_code(strict=False) == 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            regress_report([], threshold_pct=0.0)
        with pytest.raises(ReproError):
            regress_report([], baseline_window=0)


class TestLedgerCli:
    def test_history_json_two_rows(self, monkeypatch, capsys, ledger):
        add_run("fig2", 1e6, rev="aaa", monkeypatch=monkeypatch)
        add_run("fig2", 2e6, rev="bbb", monkeypatch=monkeypatch)
        assert main(["obs", "history", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["git_rev"] for r in rows] == ["aaa", "bbb"]
        assert main(["obs", "history"]) == 0
        assert "branches/s" in capsys.readouterr().out

    def test_diff_cli(self, monkeypatch, capsys, ledger):
        add_run("fig2", 1000.0, rev="aaa", monkeypatch=monkeypatch)
        add_run("fig2", 2000.0, rev="bbb", monkeypatch=monkeypatch)
        assert main(["obs", "diff", "aaa", "bbb"]) == 0
        assert "+100.0%" in capsys.readouterr().out
        assert main(["obs", "diff", "aaa", "bbb", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["delta_pct"] == pytest.approx(100.0)

    def test_regress_cli_exit_codes(self, capsys, ledger):
        for bps in (1000.0, 1000.0, 1000.0):
            add_run("fig2", bps)
        assert main(["obs", "regress", "--threshold", "50"]) == 0
        capsys.readouterr()
        add_run("fig2", 400.0)  # 60% below the median
        assert main(["obs", "regress", "--threshold", "50"]) == 1
        out = capsys.readouterr().out
        assert "obs.regression" in out
        assert main(["obs", "regress", "--threshold", "70"]) == 0

    def test_regress_json_schema(self, capsys, ledger):
        add_run("fig2", 1000.0)
        assert main(["obs", "regress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["check"] == "obs.regress-baseline"

    def test_disabled_ledger_errors_cleanly(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER", "")
        assert main(["obs", "history"]) == EXIT_ERROR
        assert "disabled" in capsys.readouterr().err

    def test_explicit_ledger_flag(self, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        add_run("fig2", 1.0, path=str(other))
        assert main(["obs", "history", "--ledger", str(other)]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_run_appends_ledger_row(self, capsys, ledger):
        code = main(
            ["run", "fig2", "--length", "2000",
             "--benchmark", "compress", "--sizes", "4"]
        )
        assert code == 0
        capsys.readouterr()
        entries, bad = load_entries(ledger)
        assert bad == []
        assert len(entries) == 1
        assert entries[0]["bench"] == "fig2"
        assert entries[0]["branches"] > 0
        assert entries[0]["sweep_keys"] == []  # no checkpoint journal
        assert entries[0]["cpu_s"] >= entries[0]["wall_s"] * 0.99

    def test_append_entry_requires_no_crc(self, ledger):
        path = append_entry({"schema": LEDGER_SCHEMA, "bench": "x"})
        entries, bad = load_entries(path)
        assert bad == [] and entries[0]["bench"] == "x"
