"""Machine-checked shape assertions: DESIGN.md section 5.

Each test asserts one qualitative finding of the paper on
reduced-length traces (absolute rates are not compared — the substrate
is a calibrated synthetic model, see DESIGN.md section 2).
"""

import pytest

from repro.analysis.best_config import crossover_size
from repro.experiments import ExperimentOptions, run_experiment

#: Shared moderate-length options; class-scoped fixtures cache results.
LENGTH = 60_000


def options(**overrides):
    merged = dict(length=LENGTH, seed=1)
    merged.update(overrides)
    return ExperimentOptions(**merged)


@pytest.fixture(scope="module")
def fig2_result():
    return run_experiment(
        "fig2",
        options(
            benchmarks=["compress", "xlisp", "mpeg_play", "real_gcc"],
            size_bits=[6, 9, 13],
        ),
    )


@pytest.fixture(scope="module")
def fig4_result():
    return run_experiment(
        "fig4",
        options(benchmarks=["espresso", "mpeg_play", "real_gcc"],
                size_bits=[6, 13]),
    )


@pytest.fixture(scope="module")
def fig9_result():
    return run_experiment(
        "fig9",
        options(benchmarks=["mpeg_play", "real_gcc"], size_bits=[7, 13]),
    )


class TestFig2Shape:
    def test_small_spec_saturates(self, fig2_result):
        """compress/xlisp gain almost nothing beyond ~2^9 counters."""
        series = fig2_result.data["series"]
        for name in ("compress", "xlisp"):
            mid, large = series[name][1], series[name][2]
            assert mid - large < 0.02, name

    def test_large_programs_keep_improving(self, fig2_result):
        """IBS benchmarks still improve from 2^9 to 2^13 (mpeg_play's
        tail is thinner at reproduction lengths, so its margin is
        smaller but must stay positive)."""
        series = fig2_result.data["series"]
        assert series["real_gcc"][1] - series["real_gcc"][2] > 0.008
        assert series["mpeg_play"][1] - series["mpeg_play"][2] > 0.0

    def test_small_tables_hurt_large_programs_more(self, fig2_result):
        """The 2^6 -> 2^13 improvement is far larger for the
        branch-rich programs."""
        series = fig2_result.data["series"]
        gain = {k: v[0] - v[2] for k, v in series.items()}
        assert gain["real_gcc"] > gain["compress"] + 0.02


class TestFig3Shape:
    def test_history_length_helps_everywhere(self):
        result = run_experiment(
            "fig3",
            options(benchmarks=["espresso", "real_gcc"], size_bits=[6, 13]),
        )
        for name, rates in result.data["series"].items():
            assert rates[1] < rates[0], name

    def test_small_benchmark_better_at_short_history(self):
        result = run_experiment(
            "fig3",
            options(benchmarks=["espresso", "real_gcc"], size_bits=[8]),
        )
        series = result.data["series"]
        assert series["espresso"][0] < series["real_gcc"][0]


class TestFig4Shape:
    def test_small_tables_best_at_address_edge_for_large_programs(
        self, fig4_result
    ):
        for name in ("mpeg_play", "real_gcc"):
            surface = fig4_result.data["surfaces"][name]
            assert surface.best_in_tier(6).row_bits <= 1, name

    def test_rows_pay_off_at_large_tables(self, fig4_result):
        for name in ("espresso", "mpeg_play"):
            surface = fig4_result.data["surfaces"][name]
            assert surface.best_in_tier(13).row_bits >= 1, name

    def test_row_heavy_penalty_worse_for_large_programs(self, fig4_result):
        """The right (GAg) edge of the big tier costs much more for
        real_gcc than for espresso, relative to its own best."""
        surfaces = fig4_result.data["surfaces"]

        def right_edge_penalty(name):
            surface = surfaces[name]
            tier = surface.tier(13)
            right = surface.point(13, 13).misprediction_rate
            best = surface.best_in_tier(13).misprediction_rate
            del tier
            return right - best

        assert right_edge_penalty("real_gcc") > right_edge_penalty(
            "espresso"
        )


class TestFig5Shape:
    def test_aliasing_grows_with_rows_for_large_program(self):
        result = run_experiment(
            "fig5", options(benchmarks=["real_gcc"], size_bits=[10])
        )
        surface = result.data["surfaces"]["real_gcc"]
        address_edge = surface.point(10, 0).aliasing_rate
        row_heavy = surface.point(10, 8).aliasing_rate
        assert row_heavy > address_edge

    def test_aliasing_falls_with_table_size(self):
        result = run_experiment(
            "fig5", options(benchmarks=["mpeg_play"], size_bits=[6, 13])
        )
        surface = result.data["surfaces"]["mpeg_play"]
        assert (
            surface.point(13, 0).aliasing_rate
            < surface.point(6, 0).aliasing_rate
        )


class TestFig7Fig8Shape:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_experiment("fig7", options(size_bits=[6, 10]))

    def test_gshare_differences_small(self, fig7):
        grid = fig7.data["grid"]
        assert grid.mean_abs_difference() < 3.0  # percentage points

    def test_gshare_wins_cluster_row_heavy(self, fig7):
        grid = fig7.data["grid"]
        wins = grid.positive_cells()
        if wins:
            mean_row_share = sum(r / n for n, r in wins) / len(wins)
            assert mean_row_share > 0.4

    def test_path_gains_do_not_reach_best_configs(self):
        """Paper: path's aliasing reductions land in configurations
        'for which GAs performs the best' — not. At the best-in-tier
        shape, path must not meaningfully beat GAs."""
        result = run_experiment("fig8", options(size_bits=[10]))
        grid = result.data["grid"]
        best = result.data["base"].best_in_tier(10)
        assert grid.cell(10, best.row_bits) < 0.5

    def test_path_wins_cluster_in_row_heavy_configs(self):
        """Where path does win, it is in few-column configurations
        (its target chunks substitute for the address bits those
        configurations lack)."""
        result = run_experiment("fig8", options(size_bits=[10]))
        grid = result.data["grid"]
        wins = grid.positive_cells()
        if wins:
            mean_row_share = sum(r / n for n, r in wins) / len(wins)
            assert mean_row_share > 0.4


class TestFig9Fig10Shape:
    def test_pas_single_column_near_optimal(self, fig9_result):
        for name, surface in fig9_result.data["surfaces"].items():
            best = surface.best_in_tier(13).misprediction_rate
            single_column = surface.point(13, 13).misprediction_rate
            assert single_column - best < 0.02, name

    def test_pas_size_insensitive(self, fig9_result):
        """Growing the second level 64x buys PAs(inf) very little."""
        for name, surface in fig9_result.data["surfaces"].items():
            small = surface.best_in_tier(7).misprediction_rate
            large = surface.best_in_tier(13).misprediction_rate
            assert small - large < 0.03, name

    def test_fig10_smaller_bht_uniformly_worse(self):
        result = run_experiment("fig10", options(size_bits=[10]))
        surfaces = result.data["surfaces"]
        tiny = surfaces["128 entries 4-way"]
        big = surfaces["2048 entries 4-way"]
        worse = sum(
            tiny.point(10, r).misprediction_rate
            > big.point(10, r).misprediction_rate
            for r in range(1, 11)
        )
        assert worse >= 8  # nearly uniform degradation


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def table3(self):
        return run_experiment(
            "table3",
            options(benchmarks=["mpeg_play", "real_gcc"],
                    size_bits=[9, 13]),
        )

    def test_pas_beats_global_at_small_budget(self, table3):
        """Paper: 'The advantage of PAs is more pronounced for smaller
        second-level tables'."""
        for name, rows in table3.data["rows"].items():
            by_label = {r.predictor_label: r for r in rows}
            pas = by_label["PAs(2k)"].best[9].misprediction_rate
            gas = by_label["GAs"].best[9].misprediction_rate
            assert pas < gas, name

    def test_globals_close_gap_at_large_budget(self, table3):
        """The GAs-over-PAs deficit shrinks from 512 to 8192 counters."""
        for name, rows in table3.data["rows"].items():
            by_label = {r.predictor_label: r for r in rows}
            gap_small = (
                by_label["GAs"].best[9].misprediction_rate
                - by_label["PAs(2k)"].best[9].misprediction_rate
            )
            gap_large = (
                by_label["GAs"].best[13].misprediction_rate
                - by_label["PAs(2k)"].best[13].misprediction_rate
            )
            assert gap_large < gap_small, name

    def test_pas128_is_crippled(self, table3):
        """A 128-entry first level makes PAs worse than everything."""
        for name, rows in table3.data["rows"].items():
            by_label = {r.predictor_label: r for r in rows}
            crippled = by_label["PAs(128)"].best[13].misprediction_rate
            healthy = by_label["PAs(1k)"].best[13].misprediction_rate
            assert crippled > healthy, name

    def test_first_level_miss_rates_ordered(self, table3):
        """Smaller first levels miss at least as often; the 128-entry
        table misses strictly more (1k vs 2k can tie at reproduction
        trace lengths, where the working set fits in both)."""
        for name, rows in table3.data["rows"].items():
            by_label = {r.predictor_label: r for r in rows}
            assert (
                by_label["PAs(128)"].first_level_miss_rate
                > by_label["PAs(1k)"].first_level_miss_rate
                >= by_label["PAs(2k)"].first_level_miss_rate
            ), name


class TestDealiasShape:
    def test_dealiased_designs_beat_plain_gshare_when_aliased(self):
        """At a small budget on a branch-rich benchmark, at least two
        of the de-aliased designs beat single-column gshare."""
        result = run_experiment(
            "ablation_dealias", options(benchmarks=["real_gcc"])
        )
        data = result.data
        budget = 9
        gshare = data[("real_gcc", budget, "gshare(1-col)")]
        winners = [
            label
            for label in ("agree", "gskew(3 banks)", "bimode(2 banks)",
                          "tournament")
            if data[("real_gcc", budget, label)] < gshare
        ]
        assert len(winners) >= 2, winners


class TestBudgetShape:
    def test_history_allocation_beats_counters(self):
        """Paper section 5: spending the bit budget on first-level
        entries beats spending it all on second-level counters."""
        result = run_experiment(
            "ablation_budget", options(benchmarks=["real_gcc"])
        )
        data = result.data
        counters = data[
            ("real_gcc", "32768-counter address-indexed (65,536 bits)")
        ]
        pas = data[
            (
                "real_gcc",
                "1024 counters + 10-bit histories for 4096 branches "
                "(43,008 bits)",
            )
        ]
        assert pas < counters
