"""Predictability scoring: information theory + simulator alignment.

The headline acceptance test: the information-theoretic ranking
(residual entropy after the best k-bit history) must rank-correlate
with per-branch misprediction rates from *actual* two-level
simulation. If it does, the static scorecard predicts where a
predictor loses before any sweep runs.
"""

import numpy as np
import pytest

from repro.analysis.branch_report import (
    branch_breakdown,
    predictability_alignment,
)
from repro.cfg.predictability import (
    DEFAULT_HISTORY_BITS,
    analyze_trace,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.predictors.factory import make_predictor_spec
from repro.sim.engine import simulate
from repro.traces.trace import BranchTrace
from repro.workloads.registry import make_workload


def _trace_from(pcs, taken):
    pc = np.asarray(pcs, dtype=np.uint64) * 4 + 0x40_0000
    taken = np.asarray(taken, dtype=bool)
    return BranchTrace(
        pc=pc, taken=taken, target=pc + 16, name="synthetic"
    )


class TestEntropyAndMi:
    def test_biased_branch_is_biased(self):
        trace = _trace_from([1] * 400, [True] * 396 + [False] * 4)
        report = analyze_trace(trace)
        (branch,) = report.branches
        assert branch.klass == "biased"
        assert branch.entropy < 0.1
        assert branch.taken_rate == pytest.approx(0.99)

    def test_alternating_branch_is_correlated(self):
        # T,N,T,N... has maximal entropy but is fully determined by
        # one bit of its own history.
        trace = _trace_from([1] * 512, [bool(i % 2) for i in range(512)])
        report = analyze_trace(trace)
        (branch,) = report.branches
        assert branch.entropy > 0.99
        assert branch.local_mi > 0.9
        assert branch.klass == "correlated"
        assert branch.residual_entropy < 0.1

    def test_random_branch_is_hard(self):
        rng = np.random.default_rng(11)
        trace = _trace_from([1] * 4096, rng.random(4096) < 0.5)
        report = analyze_trace(trace)
        (branch,) = report.branches
        assert branch.klass == "hard"
        assert branch.entropy > 0.99
        assert branch.best_mi < 0.25 * branch.entropy

    def test_cross_branch_correlation_shows_in_global_mi(self):
        # Branch 2 repeats whatever branch 1 just did: zero local
        # pattern of its own beyond what global history exposes.
        rng = np.random.default_rng(5)
        leader = rng.random(2048) < 0.5
        pcs, outcomes = [], []
        for i in range(2048):
            pcs.extend([1, 2])
            outcomes.extend([bool(leader[i]), bool(leader[i])])
        report = analyze_trace(_trace_from(pcs, outcomes))
        follower = next(
            b for b in report.branches if b.pc == 0x40_0000 + 2 * 4
        )
        leader_branch = next(
            b for b in report.branches if b is not follower
        )
        assert follower.global_mi > 0.9
        assert follower.klass == "correlated"
        assert leader_branch.klass == "hard"

    def test_informative_bits_count_sparse_correlation(self):
        trace = _trace_from([1] * 512, [bool(i % 2) for i in range(512)])
        report = analyze_trace(trace)
        (branch,) = report.branches
        # Every bit of an alternating stream determines the outcome.
        assert branch.informative_bits >= 1
        assert report.correlation_sparsity > 0.0


class TestReportSurface:
    @pytest.fixture(scope="class")
    def report(self):
        trace = make_workload("real_quicksort", length=8000, seed=2)
        return analyze_trace(trace)

    def test_branches_sorted_hottest_first(self, report):
        executions = [b.executions for b in report.branches]
        assert executions == sorted(executions, reverse=True)
        assert report.dynamic_branches == sum(executions)

    def test_class_shares_partition_the_stream(self, report):
        shares = report.class_shares()
        assert set(shares) == {"biased", "correlated", "hard"}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_findings_have_summary_first(self, report):
        findings = report.findings()
        assert findings[0].check == "predict.summary"
        assert findings[0].severity == "info"
        for finding in findings[1:]:
            assert finding.check in (
                "predict.hard-branch",
                "predict.correlated-branch",
            )
            assert finding.point.startswith("pc=0x")

    def test_render_and_json_roundtrip(self, report):
        text = report.render(top=5)
        assert "predictability of real_quicksort" in text
        payload = report.to_json()
        assert payload["dynamic_branches"] == report.dynamic_branches
        assert len(payload["branches"]) == len(report.branches)
        assert payload["history_bits"] == DEFAULT_HISTORY_BITS


class TestValidation:
    def test_empty_trace_rejected(self):
        empty = BranchTrace(
            pc=np.empty(0, dtype=np.uint64),
            taken=np.empty(0, dtype=bool),
            target=np.empty(0, dtype=np.uint64),
            name="empty",
        )
        with pytest.raises(AnalysisError):
            analyze_trace(empty)

    @pytest.mark.parametrize("bits", [0, -1, 17])
    def test_history_bits_bounds(self, bits):
        trace = _trace_from([1] * 16, [True] * 16)
        with pytest.raises(AnalysisError):
            analyze_trace(trace, history_bits=bits)


class TestSimulatorAlignment:
    @pytest.mark.parametrize(
        "workload", ["real_quicksort", "real_wordcount"]
    )
    def test_residual_entropy_ranks_gshare_losses(self, workload):
        trace = make_workload(workload, length=20_000, seed=3)
        spec = make_predictor_spec("gshare", rows=256, cols=4)
        result = simulate(spec, trace)
        records = branch_breakdown(result, trace)
        report = analyze_trace(trace)
        residual = {b.pc: b.residual_entropy for b in report.branches}
        rho = predictability_alignment(records, residual)
        assert rho > 0.5, (
            f"{workload}: residual-entropy ranking does not track "
            f"simulated mispredictions (spearman {rho:+.3f})"
        )

    def test_hard_branches_mispredict_more_than_biased(self):
        trace = make_workload("real_quicksort", length=20_000, seed=3)
        result = simulate(
            make_predictor_spec("gshare", rows=256, cols=4), trace
        )
        by_pc = {r.pc: r for r in branch_breakdown(result, trace)}
        report = analyze_trace(trace)
        rates = {"biased": [], "correlated": [], "hard": []}
        for branch in report.branches:
            if branch.executions >= 64:
                rates[branch.klass].append(
                    by_pc[branch.pc].misprediction_rate
                )
        if rates["hard"] and rates["biased"]:
            assert (
                np.mean(rates["hard"]) > np.mean(rates["biased"])
            )

    def test_alignment_needs_enough_branches(self):
        with pytest.raises(ConfigurationError):
            predictability_alignment([], {})
