"""Static aliasing analysis vs dynamic instrumentation.

The tentpole claim of the static pass: alias equivalence classes are a
pure function of branch addresses and table geometry, so the partition
computed without simulation must *exactly* match what
:func:`repro.aliasing.observed_alias_sets` observes on workloads whose
histories exercise the whole table.
"""

import pytest

from repro.aliasing import observed_alias_sets
from repro.check import (
    StaticBranchInfo,
    alias_pressure,
    alias_sets,
    branch_infos_from_program,
    check_aliasing,
    first_level_alias_sets,
)
from repro.errors import CheckError
from repro.predictors.specs import PredictorSpec
from repro.workloads.micro import (
    aliasing_pair_trace,
    biased_field_trace,
    correlated_pair_trace,
    loop_trace,
)
from repro.workloads.profiles import get_profile
from repro.workloads.program import build_program

WORKLOADS = {
    "pair": lambda: aliasing_pair_trace(400, stride_counters=8, opposite=False),
    "field": lambda: biased_field_trace(branches=24, executions_each=80),
    "correlated": lambda: correlated_pair_trace(1200, seed=1),
    "loop": lambda: loop_trace(5, 40),  # one branch: nothing to alias
}

SPECS = {
    "bimodal": PredictorSpec(scheme="bimodal", cols=8),
    "gshare": PredictorSpec(scheme="gshare", rows=4, cols=4),
    "gas": PredictorSpec(scheme="gas", rows=4, cols=4),
    "pas": PredictorSpec(scheme="pas", rows=4, cols=4),
}


class TestStaticMatchesDynamic:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("scheme", sorted(SPECS))
    def test_exact_agreement(self, workload, scheme):
        trace = WORKLOADS[workload]()
        spec = SPECS[scheme]
        static = alias_sets(spec, (int(pc) for pc in trace.pc))
        dynamic = observed_alias_sets(spec, trace)
        assert static == dynamic

    def test_static_is_superset_even_when_dynamics_miss(self):
        # Destructive pair with opposite outcomes on a row-indexed
        # scheme: the static class exists regardless of whether the
        # dynamic stream happened to collide.
        trace = aliasing_pair_trace(40, stride_counters=8, opposite=True)
        spec = SPECS["gshare"]
        static = alias_sets(spec, (int(pc) for pc in trace.pc))
        dynamic = observed_alias_sets(spec, trace)
        static_members = {pc for group in static for pc in group}
        dynamic_members = {pc for group in dynamic for pc in group}
        assert dynamic_members <= static_members

    def test_per_address_columns_never_alias(self):
        trace = biased_field_trace(branches=24, executions_each=10)
        spec = PredictorSpec(scheme="gap", rows=4)
        assert alias_sets(spec, (int(pc) for pc in trace.pc)) == []

    def test_dealiased_schemes_share_one_class(self):
        trace = biased_field_trace(branches=24, executions_each=10)
        spec = PredictorSpec(scheme="agree", rows=16)
        sets = alias_sets(spec, (int(pc) for pc in trace.pc))
        assert len(sets) == 1
        assert len(sets[0]) == 24


class TestFirstLevelSets:
    def test_groups_match_set_count(self):
        trace = biased_field_trace(branches=32, executions_each=4)
        spec = PredictorSpec(
            scheme="pas", rows=4, cols=4, bht_entries=16, bht_assoc=4
        )
        groups = first_level_alias_sets(spec, (int(pc) for pc in trace.pc))
        # 32 branches over 4 sets: every set holds 8 > assoc members.
        assert len(groups) == 4
        assert all(len(group) == 8 for group in groups)

    def test_requires_pa_family_with_finite_bht(self):
        with pytest.raises(CheckError):
            first_level_alias_sets(SPECS["gshare"], [0x1000, 0x1004])
        with pytest.raises(CheckError):
            first_level_alias_sets(SPECS["pas"], [0x1000, 0x1004])


class TestAliasPressure:
    def _infos(self, directions):
        return [
            StaticBranchInfo(
                pc=0x1000 + 4 * i,
                direction=direction,
                behavior_class="backedge" if direction else "unknown",
                weight=1.0,
            )
            for i, direction in enumerate(directions)
        ]

    def test_same_direction_class_is_harmless(self):
        # Two branches, one column: they collide, but both are steady
        # taken -- the paper's harmless all-ones collision.
        spec = PredictorSpec(scheme="bimodal", cols=1)
        pressure = alias_pressure(spec, self._infos([True, True]))
        assert pressure.alias_classes == 1
        assert pressure.harmless_classes == 1
        assert pressure.harmful_weight_share == 0.0

    def test_mixed_direction_class_is_harmful(self):
        spec = PredictorSpec(scheme="bimodal", cols=1)
        pressure = alias_pressure(spec, self._infos([True, False]))
        assert pressure.harmless_classes == 0
        assert pressure.harmful_weight_share == 1.0

    def test_unknown_member_poisons_the_class(self):
        spec = PredictorSpec(scheme="bimodal", cols=1)
        pressure = alias_pressure(spec, self._infos([True, None]))
        assert pressure.harmless_classes == 0

    def test_unaliased_field_has_zero_pressure(self):
        spec = PredictorSpec(scheme="bimodal", cols=64)
        pressure = alias_pressure(spec, self._infos([True] * 8))
        assert pressure.alias_classes == 0
        assert pressure.aliased_fraction == 0.0


class TestCheckAliasingPass:
    def test_emits_one_finding_per_cell(self):
        findings = check_aliasing(
            benchmarks=("espresso",), schemes=("gshare",), size_bits=(8, 10)
        )
        pressure = [f for f in findings if f.check == "alias.pressure"]
        assert len(pressure) == 2
        assert all(f.scheme == "gshare" for f in pressure)
        assert all("best_point" in f.data for f in pressure)

    def test_rejects_unsweepable_scheme(self):
        with pytest.raises(CheckError):
            check_aliasing(schemes=("agree",))

    def test_oversubscribed_first_level_adds_finding(self):
        # 64 entries, 4-way: 16 sets for espresso's ~1.8k static
        # branches — every set far beyond its ways.
        findings = check_aliasing(
            benchmarks=("espresso",),
            schemes=("pas",),
            size_bits=(8,),
            bht_entries=64,
            bht_assoc=4,
        )
        (first_level,) = [
            f for f in findings if f.check == "alias.first-level"
        ]
        assert first_level.severity == "warning"
        assert first_level.data["oversubscribed_sets"] > 0
        assert first_level.data["contended_weight_share"] > 0.25
        # The contention stats also ride on the per-tier findings.
        (pressure,) = [
            f for f in findings if f.check == "alias.pressure"
        ]
        assert pressure.data["first_level"]["bht_entries"] == 64

    def test_first_level_needs_a_pa_family_scheme(self):
        findings = check_aliasing(
            benchmarks=("espresso",),
            schemes=("gshare",),
            size_bits=(8,),
            bht_entries=64,
            bht_assoc=4,
        )
        assert [f.check for f in findings] == ["alias.pressure"]
        assert "first_level" not in findings[0].data

    def test_program_extraction_covers_all_static_branches(self):
        profile = get_profile("espresso")
        program = build_program(profile, seed=0)
        infos = branch_infos_from_program(program)
        assert len(infos) == len({info.pc for info in infos})
        assert len(infos) >= profile.static_branches * 0.5
