"""Tests for transition rates, run lengths, and the trace store."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import BranchTrace, run_length_counts, transition_rate
from repro.traces.stats import outcome_entropy, per_branch_entropy
from repro.workloads import TraceStore, make_workload


def trace_of(records):
    return BranchTrace.from_records(records)


class TestTransitionRate:
    def test_constant_branch_never_transitions(self):
        trace = trace_of([(0x100, True)] * 20)
        assert transition_rate(trace) == 0.0

    def test_alternating_branch_always_transitions(self):
        trace = trace_of([(0x100, i % 2 == 0) for i in range(20)])
        assert transition_rate(trace) == 1.0

    def test_mixed(self):
        # TTTN per period: 1 transition in... runs T T T | N: outcome
        # changes twice per period of 4 (T->N and N->T).
        pattern = [True, True, True, False]
        trace = trace_of([(0x100, pattern[i % 4]) for i in range(400)])
        assert transition_rate(trace) == pytest.approx(0.5, abs=0.01)

    def test_interleaved_branches_independent(self):
        # Two constant branches interleaved: no per-branch transitions
        # even though the global stream alternates.
        records = []
        for _ in range(50):
            records.append((0x100, True))
            records.append((0x200, False))
        assert transition_rate(trace_of(records)) == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(TraceError):
            transition_rate(trace_of([(0x100, True)]))

    def test_no_repeats_rejected(self):
        with pytest.raises(TraceError):
            transition_rate(trace_of([(0x100, True), (0x104, True)]))


class TestRunLengths:
    def test_constant_branch_one_long_run(self):
        trace = trace_of([(0x100, True)] * 10)
        counts = run_length_counts(trace, max_length=16)
        assert counts[10] == 1
        assert counts.sum() == 1

    def test_alternating_runs_of_one(self):
        trace = trace_of([(0x100, i % 2 == 0) for i in range(10)])
        counts = run_length_counts(trace)
        assert counts[1] == 10

    def test_long_runs_clipped(self):
        trace = trace_of([(0x100, True)] * 100)
        counts = run_length_counts(trace, max_length=8)
        assert counts[8] == 1
        assert len(counts) == 9

    def test_loop_workload_has_long_run_tail(self):
        trace = make_workload("compress", length=10_000, seed=1)
        counts = run_length_counts(trace, max_length=8)
        # Back-edges produce runs at the clipped tail.
        assert counts[8] > 0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            run_length_counts(trace_of([]))


class TestOutcomeEntropy:
    def test_fair_coin_is_one_bit(self):
        assert outcome_entropy(0.5) == pytest.approx(1.0)

    def test_boundaries_are_zero(self):
        assert outcome_entropy(0.0) == 0.0
        assert outcome_entropy(1.0) == 0.0

    def test_symmetry(self):
        for rate in (0.1, 0.25, 0.4):
            assert outcome_entropy(rate) == pytest.approx(
                outcome_entropy(1.0 - rate)
            )

    def test_monotone_toward_half(self):
        rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        values = [outcome_entropy(r) for r in rates]
        assert values == sorted(values)

    @pytest.mark.parametrize("rate", [-0.01, 1.01, 2.0])
    def test_out_of_range_rejected(self, rate):
        with pytest.raises(TraceError):
            outcome_entropy(rate)


class TestPerBranchEntropy:
    def test_empty_trace_rejected(self):
        empty = BranchTrace(
            pc=np.empty(0, dtype=np.uint64),
            taken=np.empty(0, dtype=bool),
            target=np.empty(0, dtype=np.uint64),
            name="empty",
        )
        with pytest.raises(TraceError):
            per_branch_entropy(empty)

    def test_single_branch_trace(self):
        trace = trace_of([(0x100, i % 2 == 0) for i in range(40)])
        entropies = per_branch_entropy(trace)
        assert set(entropies) == {0x100}
        assert entropies[0x100] == pytest.approx(1.0)

    def test_all_taken_stream_has_zero_entropy(self):
        trace = trace_of(
            [(0x100, True)] * 30 + [(0x200, True)] * 10
        )
        entropies = per_branch_entropy(trace)
        assert entropies == {0x100: 0.0, 0x200: 0.0}

    def test_mixed_branches_score_independently(self):
        trace = trace_of(
            [(0x100, True)] * 20
            + [(0x200, i % 2 == 0) for i in range(20)]
        )
        entropies = per_branch_entropy(trace)
        assert entropies[0x100] == 0.0
        assert entropies[0x200] == pytest.approx(1.0)


class TestTraceStore:
    def test_generate_then_load(self, tmp_path):
        store = TraceStore(str(tmp_path))
        assert not store.contains("compress", 2_000, seed=1)
        first = store.get("compress", 2_000, seed=1)
        assert store.contains("compress", 2_000, seed=1)
        second = store.get("compress", 2_000, seed=1)
        assert np.array_equal(first.pc, second.pc)
        assert len(store.stored_files()) == 1

    def test_distinct_keys_distinct_files(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.get("compress", 1_000, seed=1)
        store.get("compress", 1_000, seed=2)
        store.get("compress", 2_000, seed=1)
        assert len(store.stored_files()) == 3

    def test_missing_directory_lists_empty(self, tmp_path):
        store = TraceStore(str(tmp_path / "nope"))
        assert store.stored_files() == []

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "env"))
        store = TraceStore()
        assert store.directory == str(tmp_path / "env")


class TestGenerateCli:
    def test_generate_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        code = main(
            ["generate", "compress", "--length", "2000",
             "--store", store_dir]
        )
        assert code == 0
        assert "generated" in capsys.readouterr().out
        code = main(
            ["generate", "compress", "--length", "2000",
             "--store", store_dir]
        )
        assert code == 0
        assert "loaded" in capsys.readouterr().out
