"""Phase-profiler tests: coverage, tiling, rendering, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    get_tracer,
    render_phases,
    reset_metrics,
    snapshot,
    summarize_path,
)
from repro.obs.profile import (
    ENGINE_PHASES,
    PHASE_PREFIX,
    PHASES,
    disable_profiling,
    enable_profiling,
    phase,
    phase_totals,
    profiling_enabled,
)
from repro.sim.sweep import sweep_tiers
from repro.workloads.registry import make_workload


@pytest.fixture(autouse=True)
def _clean_telemetry():
    disable_profiling()
    reset_metrics()
    get_tracer().reset()
    yield
    disable_profiling()
    get_tracer().reset()
    reset_metrics()


@pytest.fixture
def trace():
    return make_workload("compress", length=4000, seed=0)


class TestPhasePrimitive:
    def test_disabled_phase_is_a_noop(self):
        with phase("fsm_scan"):
            pass
        assert phase_totals() == {}
        assert snapshot()["histograms"]["sim.phase.fsm_scan"]["count"] == 0

    def test_enabled_phase_accumulates(self):
        enable_profiling()
        assert profiling_enabled()
        with phase("fsm_scan"):
            pass
        with phase("fsm_scan"):
            pass
        totals = phase_totals()
        assert totals["fsm_scan"] >= 0.0
        assert (
            snapshot()["histograms"]["sim.phase.fsm_scan"]["count"] == 2
        )

    def test_disable_clears_totals(self):
        enable_profiling()
        with phase("fsm_scan"):
            pass
        disable_profiling()
        assert phase_totals() == {}
        assert not profiling_enabled()

    def test_all_phases_predeclared(self):
        histograms = snapshot()["histograms"]
        for name in PHASES:
            assert PHASE_PREFIX + name in histograms


class TestEngineTiling:
    def test_phase_sum_matches_wall_on_micro_sweep(self, trace):
        """Figure-2-style micro sweep: engine phases tile sim.wall_s."""
        enable_profiling()
        sweep_tiers("gas", trace, size_bits=[4, 6])
        data = snapshot()
        wall = data["counters"]["sim.wall_s"]
        phase_sum = sum(
            data["histograms"][PHASE_PREFIX + name]["total"]
            for name in ENGINE_PHASES
        )
        assert wall > 0
        assert phase_sum == pytest.approx(wall, rel=0.10)
        # Every engine call contributed exactly one residual sample.
        assert (
            data["histograms"]["sim.phase.engine_other"]["count"]
            == data["counters"]["engine.vectorized.runs"]
            + data["counters"]["engine.reference.runs"]
        )

    def test_profiling_off_leaves_histograms_empty(self, trace):
        sweep_tiers("gas", trace, size_bits=[4])
        histograms = snapshot()["histograms"]
        for name in PHASES:
            assert histograms[PHASE_PREFIX + name]["count"] == 0

    def test_results_identical_with_and_without_profiling(self, trace):
        plain = sweep_tiers("gas", trace, size_bits=[4])
        enable_profiling()
        profiled = sweep_tiers("gas", trace, size_bits=[4])
        assert plain.tiers == profiled.tiers


class TestPhaseRendering:
    def test_render_phases_empty_message(self):
        text = render_phases()
        assert "--profile" in text

    def test_render_phases_lists_phases(self, trace):
        enable_profiling()
        sweep_tiers("gas", trace, size_bits=[4])
        text = render_phases()
        assert "phase profile" in text
        assert "fsm_scan" in text and "engine_other" in text

    def test_cli_profile_and_summarize_phases(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code = main(
            ["run", "fig2", "--length", "2000", "--benchmark", "compress",
             "--sizes", "4", "--profile", "--metrics-out", str(metrics)]
        )
        assert code == 0
        report = json.loads(metrics.read_text())
        assert report["histograms"]["sim.phase.fsm_scan"]["count"] > 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(metrics), "--phases"]) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out and "fsm_scan" in out

    def test_summarize_phases_from_saved_report(self, tmp_path, trace):
        enable_profiling()
        sweep_tiers("gas", trace, size_bits=[4])
        from repro.obs import write_metrics

        path = tmp_path / "m.json"
        write_metrics(str(path))
        text = summarize_path(str(path), phases=True)
        assert "phase profile" in text

    def test_summarize_phases_rejects_span_trace(self, tmp_path):
        from repro.errors import ReproError

        spans = tmp_path / "t.jsonl"
        tracer = get_tracer()
        tracer.configure_sink(str(spans))
        with tracer.span("x"):
            pass
        tracer.close_sink()
        with pytest.raises(ReproError):
            summarize_path(str(spans), phases=True)
