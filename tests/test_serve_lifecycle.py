"""Service-lifecycle tests: the daemon as an actual process.

Satellite 4's contract: SIGTERM drains gracefully (exit 0, journals
resumable), a SIGKILLed daemon restarts from the durable queue with no
lost or duplicated points, and crashed pool workers are respawned
without failing the job.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import fetch_result, job_status, submit_job

MICRO_ARGS = [
    "--benchmark",
    "compress",
    "--length",
    "2000",
    "--sizes",
    "4",
    "5",
]
MICRO_KWARGS = dict(
    benchmarks=("compress",), length=2_000, seed=0, size_bits=(4, 5)
)
MICRO_POINTS = 11


def _env(queue_dir, **extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SERVE_QUEUE"] = str(queue_dir)
    env.pop("REPRO_FAULT_SPEC", None)
    env.update(extra)
    return env


def _repro(args, queue_dir, **extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(queue_dir, **extra),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _serve_once(queue_dir, **extra):
    proc = _repro(
        ["serve", "--once", "--workers", "2"], queue_dir, **extra
    )
    assert proc.returncode == 0, proc.stderr
    return proc


def _wait_for_state(queue_dir, job_id, states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        (row,) = job_status(str(queue_dir), job_id)
        if row["state"] in states:
            return row
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {states}: {row}"
    )


def _assert_complete(queue_dir, job_id):
    (row,) = job_status(str(queue_dir), job_id)
    assert row["state"] == "done", row
    assert row["points"] == MICRO_POINTS
    # No lost points (the surface is complete) and no duplicated ones
    # (every point is either a cache hit or computed exactly once).
    assert row["cache_hits"] + row["computed"] == MICRO_POINTS
    payload = fetch_result(str(queue_dir), job_id)
    assert payload["experiment"] == "fig4"
    assert payload["text"]
    return payload


class TestGracefulDrain:
    def test_sigterm_exits_zero_and_journals_resumably(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO_KWARGS)
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--workers",
                "2",
            ],
            env=_env(tmp_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_state(
                tmp_path, job.id, ("running", "done"), timeout=120
            )
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        assert daemon.returncode == 0

        # Shutdown wrote the merged metrics report next to the queue.
        metrics_path = tmp_path / "serve_metrics.json"
        assert metrics_path.exists()
        json.loads(metrics_path.read_text())

        # Whatever the drain left behind (done, or requeued as
        # queued), one more pass finishes it with nothing lost.
        (row,) = job_status(str(tmp_path), job.id)
        assert row["state"] in ("done", "queued")
        if row["state"] != "done":
            _serve_once(tmp_path)
        _assert_complete(tmp_path, job.id)

    def test_sigint_behaves_like_sigterm(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO_KWARGS)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2"],
            env=_env(tmp_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_state(
                tmp_path, job.id, ("running", "done"), timeout=120
            )
            daemon.send_signal(signal.SIGINT)
            daemon.wait(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        assert daemon.returncode == 0
        (row,) = job_status(str(tmp_path), job.id)
        assert row["state"] in ("done", "queued")


class TestCrashRecovery:
    def test_sigkill_restarts_from_queue(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO_KWARGS)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2"],
            env=_env(tmp_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_state(
                tmp_path, job.id, ("running", "done"), timeout=120
            )
        finally:
            daemon.kill()
            daemon.wait()

        # The durable queue survived the crash: a restarted daemon
        # salvages any partial worker results into the store, requeues
        # the interrupted job, and completes it.
        _serve_once(tmp_path)
        _assert_complete(tmp_path, job.id)

    def test_crashed_workers_are_respawned(self, tmp_path):
        job, _ = submit_job(str(tmp_path), "fig4", **MICRO_KWARGS)
        # Every worker's 3rd point crashes its process; respawn rounds
        # must still finish the job (the serial fallback backstops the
        # last round).
        _serve_once(tmp_path, REPRO_FAULT_SPEC="exec.worker:raise@3")
        _assert_complete(tmp_path, job.id)


class TestCliSmoke:
    def test_submit_serve_fetch_matches_run(self, tmp_path):
        submitted = _repro(
            ["submit", "fig4", *MICRO_ARGS, "--json"], tmp_path
        )
        assert submitted.returncode == 0, submitted.stderr
        job_id = json.loads(submitted.stdout)["id"]
        _serve_once(tmp_path)

        fetched = _repro(["fetch", job_id], tmp_path)
        assert fetched.returncode == 0, fetched.stderr
        one_shot = _repro(
            ["run", "fig4", *MICRO_ARGS, "--no-cache"], tmp_path
        )
        assert one_shot.returncode == 0, one_shot.stderr
        assert fetched.stdout == one_shot.stdout

    def test_status_and_cancel_messages(self, tmp_path):
        submitted = _repro(
            ["submit", "fig4", *MICRO_ARGS, "--json"], tmp_path
        )
        job_id = json.loads(submitted.stdout)["id"]
        status = _repro(["status"], tmp_path)
        assert job_id in status.stdout and "queued" in status.stdout
        cancelled = _repro(["cancel", job_id], tmp_path)
        assert "cancel requested" in cancelled.stdout
        _serve_once(tmp_path)
        final = _repro(["status", job_id, "--json"], tmp_path)
        (row,) = json.loads(final.stdout)
        assert row["state"] == "cancelled"
