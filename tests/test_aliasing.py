"""Tests for aliasing instrumentation and classification."""

import numpy as np
import pytest

from repro.aliasing import (
    aliasing_rate,
    aliasing_report,
    all_ones_conflict_share,
    classify_conflicts,
    conflict_mask,
    sweep_aliasing,
)
from repro.errors import ConfigurationError, TraceError
from repro.predictors import make_predictor_spec
from repro.traces import BranchTrace
from repro.workloads import make_workload


def trace_of(records, name="t"):
    return BranchTrace.from_records(records, name=name)


class TestConflictMask:
    def test_no_conflict_single_branch(self):
        idx = np.array([3, 3, 3])
        pc = np.array([0x100] * 3)
        assert not conflict_mask(idx, pc).any()

    def test_conflict_on_interleaved_branches(self):
        idx = np.array([5, 5, 5, 5])
        pc = np.array([0x100, 0x200, 0x100, 0x200])
        mask = conflict_mask(idx, pc)
        # Every access after the first hits a counter last touched by
        # the other branch.
        assert list(mask) == [False, True, True, True]

    def test_different_counters_never_conflict(self):
        idx = np.array([1, 2, 1, 2])
        pc = np.array([0x100, 0x200, 0x100, 0x200])
        assert not conflict_mask(idx, pc).any()

    def test_time_order_preserved_within_counter(self):
        # A B A on one counter: second A conflicts (previous access was
        # B), B conflicts (previous was A).
        idx = np.array([7, 7, 7])
        pc = np.array([0x100, 0x200, 0x100])
        assert list(conflict_mask(idx, pc)) == [False, True, True]

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            conflict_mask(np.array([1]), np.array([1, 2]))

    def test_empty(self):
        assert len(conflict_mask(np.array([]), np.array([]))) == 0


class TestAliasingRate:
    def test_bimodal_small_table_aliases(self):
        # Two branches 16 counters apart in a 16-entry table collide.
        records = [(0x100, True), (0x100 + 16 * 4, False)] * 50
        trace = trace_of(records)
        spec = make_predictor_spec("bimodal", cols=16)
        assert aliasing_rate(spec, trace) > 0.9

    def test_bimodal_large_table_separates(self):
        records = [(0x100, True), (0x100 + 16 * 4, False)] * 50
        trace = trace_of(records)
        spec = make_predictor_spec("bimodal", cols=64)
        assert aliasing_rate(spec, trace) == 0.0

    def test_direct_mapped_first_level_identity(self):
        """Paper section 5: address-indexed second-level aliasing ==
        direct-mapped first-level conflict rate."""
        from repro.sim.vectorized import bht_miss_stream

        trace = make_workload("mpeg_play", length=20_000, seed=4)
        spec = make_predictor_spec("bimodal", cols=256)
        conflict = aliasing_rate(spec, trace)
        miss = bht_miss_stream(trace, entries=256, assoc=1)
        # Cold-start (compulsory) misses are not inter-branch conflicts,
        # so the streams differ by at most the static branch count.
        compulsory = trace.num_static_branches / len(trace)
        assert abs(float(np.mean(miss)) - conflict) <= compulsory + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            aliasing_rate(
                make_predictor_spec("bimodal", cols=4), trace_of([])
            )

    def test_more_rows_more_aliasing_for_large_program(self):
        """Paper Figure 5: trading columns for rows increases aliasing
        (history distinguishes branches worse than addresses)."""
        trace = make_workload("real_gcc", length=30_000, seed=1)
        address_heavy = make_predictor_spec("gas", rows=4, cols=256)
        row_heavy = make_predictor_spec("gas", rows=256, cols=4)
        assert aliasing_rate(row_heavy, trace) > aliasing_rate(
            address_heavy, trace
        )


class TestClassification:
    def test_all_agreeing_conflicts_are_harmless(self):
        records = [(0x100, True), (0x100 + 16 * 4, True)] * 50
        stats = classify_conflicts(
            make_predictor_spec("bimodal", cols=16), trace_of(records)
        )
        assert stats.conflicts > 0
        assert stats.harmless_share == 1.0
        assert stats.destructive == 0

    def test_opposite_branches_are_destructive(self):
        records = [(0x100, True), (0x100 + 16 * 4, False)] * 50
        stats = classify_conflicts(
            make_predictor_spec("bimodal", cols=16), trace_of(records)
        )
        assert stats.harmless_share == 0.0
        assert stats.destructive_rate > 0.9

    def test_no_conflicts_zero_share(self):
        stats = classify_conflicts(
            make_predictor_spec("bimodal", cols=64),
            trace_of([(0x100, True)] * 10),
        )
        assert stats.conflicts == 0
        assert stats.harmless_share == 0.0

    def test_accessors_consistent(self):
        trace = make_workload("espresso", length=10_000, seed=2)
        stats = classify_conflicts(
            make_predictor_spec("gag", rows=64), trace
        )
        assert stats.harmless + stats.destructive == stats.conflicts
        assert 0 <= stats.aliasing_rate <= 1


class TestAllOnes:
    def test_tight_loops_produce_all_ones_conflicts(self):
        """Two interleaved tight loops: a substantial share of their
        conflicts lands on the all-taken row (each run's mid-loop
        accesses sit at all-ones; the run hand-off conflicts there).
        The share is well above what the 1-in-8 rows baseline would
        give yet below half, matching the paper's 'about a fifth'."""
        records = []
        for _ in range(60):
            records.extend([(0x100, True)] * 7 + [(0x100, False)])
            records.extend([(0x900, True)] * 7 + [(0x900, False)])
        share = all_ones_conflict_share(
            make_predictor_spec("gag", rows=8), trace_of(records)
        )
        assert 0.15 < share < 0.5

    def test_only_global_schemes_accepted(self):
        with pytest.raises(ConfigurationError):
            all_ones_conflict_share(
                make_predictor_spec("pas", rows=8, cols=2),
                trace_of([(0x100, True)] * 4),
            )

    def test_workload_share_in_papers_ballpark(self):
        """Paper: 'approximately a fifth of the aliasing for the larger
        benchmarks was for the all-ones pattern' — accept a broad band
        around that."""
        trace = make_workload("mpeg_play", length=40_000, seed=1)
        share = all_ones_conflict_share(
            make_predictor_spec("gag", rows=64), trace
        )
        assert 0.02 < share < 0.6


class TestSweepAndReport:
    def test_sweep_aliasing_fills_tiers(self):
        trace = make_workload("compress", length=5_000, seed=1)
        surface = sweep_aliasing("gas", trace, size_bits=[4, 5])
        assert len(surface.tier(4)) == 5
        assert all(p.aliasing_rate is not None for p in surface.tier(4))

    def test_sweep_aliasing_optionally_measures_misprediction(self):
        trace = make_workload("compress", length=5_000, seed=1)
        surface = sweep_aliasing(
            "gas", trace, size_bits=[4], measure_misprediction=True
        )
        assert all(
            p.misprediction_rate == p.misprediction_rate  # not NaN
            for p in surface.tier(4)
        )

    def test_report_renders(self):
        trace = make_workload("compress", length=3_000, seed=1)
        text = aliasing_report(
            [
                make_predictor_spec("bimodal", cols=64),
                make_predictor_spec("gag", rows=64),
            ],
            trace,
        )
        assert "aliasing" in text
        assert "bimodal" in text
