"""Durable job-queue tests (see :mod:`repro.serve.queue`).

The queue is append-only JSONL with the ledger's CRC stamp on every
line: submitters create headers exclusively, the daemon is the sole
event appender, and torn tails roll the job back to its last good
state instead of corrupting it.
"""

import os
import threading

import pytest

from repro.obs import reset_metrics, snapshot
from repro.serve.queue import (
    JobQueue,
    JobSpec,
    ServeError,
    summarize,
)


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


def _spec(**overrides):
    base = dict(
        experiment="fig4",
        benchmarks=("compress",),
        length=2_000,
        seed=0,
        size_bits=(4, 5),
    )
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_key_is_content_addressed(self):
        assert _spec().key() == _spec().key()
        assert _spec().key() != _spec(length=3_000).key()
        assert _spec().key() != _spec(experiment="fig6").key()

    def test_json_roundtrip(self):
        spec = _spec()
        assert JobSpec.from_json(spec.to_json()) == spec


class TestSubmit:
    def test_submit_creates_durable_job(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, attached = queue.submit(_spec())
        assert not attached
        assert job.state == "queued"
        assert os.path.exists(job.path)
        loaded = queue.find(job.id)
        assert loaded.spec == _spec()

    def test_identical_live_job_dedups(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first, _ = queue.submit(_spec())
        second, attached = queue.submit(_spec())
        assert attached
        assert second.id == first.id
        counters = snapshot()["counters"]
        assert counters["serve.jobs_submitted"] == 1
        assert counters["serve.jobs_deduped"] == 1

    def test_different_specs_never_dedup(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        a, _ = queue.submit(_spec())
        b, attached = queue.submit(_spec(experiment="fig6"))
        assert not attached
        assert a.id != b.id

    def test_terminal_job_gets_a_fresh_sequence(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first, _ = queue.submit(_spec())
        queue.append_event(first, "done", {"points": 11})
        second, attached = queue.submit(_spec())
        assert not attached
        assert second.id != first.id
        assert second.state == "queued"

    def test_concurrent_identical_submissions_share_one_job(
        self, tmp_path
    ):
        queue_dir = str(tmp_path)
        outcomes = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            job, attached = JobQueue(queue_dir).submit(_spec())
            outcomes.append((job.id, attached))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = {job_id for job_id, _ in outcomes}
        assert len(ids) == 1
        assert sum(1 for _, attached in outcomes if not attached) == 1


class TestEventsAndState:
    def test_state_follows_last_event(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        queue.append_event(job, "running", {"points": 11})
        queue.append_event(queue.find(job.id), "done", {"points": 11})
        final = queue.find(job.id)
        assert final.state == "done"
        assert final.detail["points"] == 11
        assert not final.is_live()

    def test_torn_event_tail_rolls_back(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        queue.append_event(job, "running", {"points": 11})
        with open(job.path, "a", encoding="ascii") as handle:
            handle.write('{"kind": "event", "state": "done"')  # torn
        loaded = queue.find(job.id)
        assert loaded.state == "running"

    def test_corrupt_header_skips_job(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        with open(job.path, "w", encoding="ascii") as handle:
            handle.write("not json\n")
        assert queue.jobs() == []

    def test_find_unknown_raises(self, tmp_path):
        with pytest.raises(ServeError):
            JobQueue(str(tmp_path)).find("no-such-job")

    def test_empty_directory_required(self):
        with pytest.raises(ServeError):
            JobQueue("")


class TestCancel:
    def test_cancel_drops_sidecar_for_live_job(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        queue.request_cancel(job.id)
        assert queue.find(job.id).cancel_requested()
        queue.clear_cancel(queue.find(job.id))
        assert not queue.find(job.id).cancel_requested()

    def test_cancel_of_terminal_job_is_a_noop(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        queue.append_event(job, "done", {})
        result = queue.request_cancel(job.id)
        assert result.state == "done"
        assert not result.cancel_requested()


class TestSummarize:
    def test_rows_carry_point_accounting(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = queue.submit(_spec())
        queue.append_event(
            job, "done", {"points": 11, "cache_hits": 4, "computed": 7}
        )
        (row,) = summarize([queue.find(job.id)])
        assert row["id"] == job.id
        assert row["experiment"] == "fig4"
        assert row["state"] == "done"
        assert row["points"] == 11
        assert row["cache_hits"] == 4
        assert row["computed"] == 7
