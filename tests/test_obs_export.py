"""Exporter tests: Chrome trace_event JSON and Prometheus textfiles."""

import json

import pytest

from repro.cli import EXIT_ERROR, main
from repro.obs import get_tracer, reset_metrics
from repro.obs.export import (
    chrome_trace,
    ledger_prometheus_text,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    reset_metrics()
    get_tracer().reset()
    yield
    get_tracer().close_sink()
    get_tracer().reset()
    reset_metrics()


def validate_trace_event_document(document):
    """Assert the trace_event schema Perfetto/chrome://tracing expects."""
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert isinstance(document["traceEvents"], list)
    for event in document["traceEvents"]:
        assert event["ph"] == "X"
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["ts"], float) and event["ts"] >= 0
        assert isinstance(event["dur"], float) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["args"], dict)


class TestChromeTrace:
    def test_span_tree_becomes_complete_events(self):
        tracer = SpanTracer()
        with tracer.span("outer", scheme="gas"):
            with tracer.span("inner"):
                pass
        document = chrome_trace(tracer)
        validate_trace_event_document(document)
        names = [e["name"] for e in document["traceEvents"]]
        assert names == ["outer", "inner"]
        outer, inner = document["traceEvents"]
        assert outer["args"] == {"scheme": "gas"}
        assert outer["ts"] <= inner["ts"]
        assert inner["dur"] <= outer["dur"]

    def test_open_spans_are_skipped(self):
        tracer = SpanTracer()
        ctx = tracer.span("open")
        ctx.__enter__()
        assert chrome_trace(tracer)["traceEvents"] == []
        ctx.__exit__(None, None, None)
        assert len(chrome_trace(tracer)["traceEvents"]) == 1

    def test_non_json_attrs_stringified(self):
        tracer = SpanTracer()
        with tracer.span("x", obj=object(), n=3):
            pass
        args = chrome_trace(tracer)["traceEvents"][0]["args"]
        assert args["n"] == 3
        assert isinstance(args["obj"], str)

    def test_write_round_trip(self, tmp_path):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("work"):
                pass
        out = tmp_path / "trace.json"
        assert write_chrome_trace(str(out), tracer) == 3
        document = json.loads(out.read_text())
        validate_trace_event_document(document)
        assert len(document["traceEvents"]) == 3

    def test_cli_trace_out_format_chrome(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["run", "fig2", "--length", "2000", "--benchmark", "compress",
             "--sizes", "4", "--trace-out", str(out),
             "--trace-out-format", "chrome"]
        )
        assert code == 0
        document = json.loads(out.read_text())
        validate_trace_event_document(document)
        assert any(
            e["name"] == "sweep_tiers" for e in document["traceEvents"]
        )


class TestPrometheusText:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sim.branches").inc(42)
        registry.gauge("g.x").set(7)
        for v in (0.5, 1.5, 2.5):
            registry.histogram("sweep.point_s").observe(v)
        return registry.snapshot()

    def test_counters_gauges_histograms(self):
        text = prometheus_text(self.snapshot())
        assert "repro_sim_branches_total 42.0" in text
        assert "repro_g_x 7.0" in text
        assert 'repro_sweep_point_s{quantile="0.5"}' in text
        assert 'repro_sweep_point_s{quantile="0.99"}' in text
        assert "repro_sweep_point_s_sum 4.5" in text
        assert "repro_sweep_point_s_count 3" in text
        assert "# TYPE repro_sim_branches_total counter" in text
        assert "# TYPE repro_sweep_point_s summary" in text

    def test_empty_histograms_omitted(self):
        text = prometheus_text(MetricsRegistry().snapshot())
        assert "repro_sweep_point_s_count" not in text

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c/d").inc()
        assert "repro_a_b_c_d_total" in prometheus_text(registry.snapshot())

    def test_ledger_gauges(self):
        entries = [
            {"bench": "fig2", "branches_per_sec": 1e6, "wall_s": 2.0},
            {"bench": "fig2", "branches_per_sec": 2e6, "wall_s": 1.0},
            {"bench": "fig3", "branches_per_sec": 3e6, "wall_s": 4.0},
        ]
        text = ledger_prometheus_text(entries)
        # Latest row per bench wins.
        assert 'repro_bench_branches_per_sec{bench="fig2"} 2000000.0' in text
        assert 'repro_bench_branches_per_sec{bench="fig3"} 3000000.0' in text
        assert 'repro_bench_wall_seconds{bench="fig2"} 1.0' in text
        assert ledger_prometheus_text([]) == ""

    def test_write_prometheus_combines(self, tmp_path):
        out = tmp_path / "repro.prom"
        text = write_prometheus(
            str(out),
            snapshot=self.snapshot(),
            ledger_entries=[{"bench": "fig2", "branches_per_sec": 5.0}],
        )
        assert out.read_text() == text
        assert "repro_sim_branches_total" in text
        assert 'repro_bench_branches_per_sec{bench="fig2"}' in text


class TestExportPromCli:
    def test_export_from_metrics_file(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code = main(
            ["run", "fig2", "--length", "2000", "--benchmark", "compress",
             "--sizes", "4", "--metrics-out", str(metrics)]
        )
        assert code == 0
        out = tmp_path / "repro.prom"
        code = main(
            ["obs", "export-prom", str(out), "--metrics", str(metrics),
             "--with-ledger"]
        )
        assert code == 0
        text = out.read_text()
        assert "repro_sim_branches_total" in text
        # The run itself landed in the ledger; --with-ledger exports it.
        assert 'repro_bench_branches_per_sec{bench="fig2"}' in text

    def test_export_live_registry(self, tmp_path):
        out = tmp_path / "live.prom"
        assert main(["obs", "export-prom", str(out)]) == 0
        assert "repro_" in out.read_text()

    def test_unreadable_metrics_file_errors(self, tmp_path, capsys):
        out = tmp_path / "x.prom"
        code = main(
            ["obs", "export-prom", str(out),
             "--metrics", str(tmp_path / "absent.json")]
        )
        assert code == EXIT_ERROR
        assert "cannot read metrics" in capsys.readouterr().err
