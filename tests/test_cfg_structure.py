"""Dominators, natural loops, and the static branch taxonomy."""

import pytest

from repro.cfg.bytecode import extract_cfg
from repro.cfg.structure import (
    BRANCH_CLASSES,
    analyze_structure,
    branch_skeleton,
)

from tests.test_cfg_bytecode import (
    classify,
    count_even,
    count_words,
    find_pair,
)


def loop_forever_shape(n):
    # A while-loop body with both a guard and a back edge.
    total = 0
    while n > 0:
        if n % 3 == 0:
            total += n
        n -= 1
    return total


class TestDominators:
    def test_entry_dominates_itself(self):
        info = analyze_structure(extract_cfg(classify.__code__))
        assert info.idom[0] == 0

    def test_idom_is_a_tree_rooted_at_entry(self):
        info = analyze_structure(extract_cfg(find_pair.__code__))
        for block in info.reachable:
            # Walking idom links always terminates at the entry.
            seen = set()
            current = block
            while current != 0:
                assert current not in seen
                seen.add(current)
                current = info.idom[current]

    def test_all_blocks_reachable_in_straightline_functions(self):
        cfg = extract_cfg(count_even.__code__)
        info = analyze_structure(cfg)
        assert info.reachable == frozenset(range(cfg.num_blocks))


class TestLoops:
    def test_single_loop_detected(self):
        info = analyze_structure(extract_cfg(count_even.__code__))
        assert len(info.loops) == 1
        assert info.max_nesting == 1

    def test_nested_loops_nest(self):
        info = analyze_structure(extract_cfg(find_pair.__code__))
        assert len(info.loops) == 2
        assert info.max_nesting == 2
        # The inner loop body is a subset of the outer loop body.
        inner, outer = sorted(info.loops, key=lambda lp: len(lp.body))
        assert inner.body < outer.body

    def test_loop_header_in_its_own_body(self):
        for function in (count_even, find_pair, loop_forever_shape):
            info = analyze_structure(extract_cfg(function.__code__))
            for loop in info.loops:
                assert loop.header in loop

    def test_branchless_code_has_no_loops(self):
        def straight(a):
            return a * 2 + 1

        info = analyze_structure(extract_cfg(straight.__code__))
        assert info.loops == ()
        assert info.back_edges == frozenset()
        assert info.reducible


class TestBranchClasses:
    def test_every_site_is_classified(self):
        for function in (classify, count_even, count_words, find_pair):
            cfg = extract_cfg(function.__code__)
            info = analyze_structure(cfg)
            assert set(info.branch_classes) == {
                site.ordinal for site in cfg.branch_sites
            }
            for klass in info.branch_classes.values():
                assert klass in BRANCH_CLASSES

    def test_pure_conditionals_are_guards(self):
        info = analyze_structure(extract_cfg(classify.__code__))
        assert set(info.branch_classes.values()) == {"guard"}

    def test_while_loop_branch_touches_the_loop(self):
        # The while-condition branch compiles to a back edge on
        # 3.10/3.11 and a rotated loop-exit on 3.12 — either way it
        # must be loop-involved, never a plain guard; the `if n % 3`
        # inside the body stays a guard on every interpreter.
        cfg = extract_cfg(loop_forever_shape.__code__)
        info = analyze_structure(cfg)
        classes = [
            info.branch_classes[site.ordinal] for site in cfg.branch_sites
        ]
        assert any(k in ("back-edge", "loop-exit") for k in classes)
        assert "guard" in classes

    def test_skeleton_agrees_with_explicit_info(self):
        cfg = extract_cfg(count_words.__code__)
        info = analyze_structure(cfg)
        assert branch_skeleton(cfg) == branch_skeleton(cfg, info)


class TestDeterminism:
    @pytest.mark.parametrize("function", [count_even, find_pair, classify])
    def test_repeated_analysis_is_identical(self, function):
        first = analyze_structure(extract_cfg(function.__code__))
        second = analyze_structure(extract_cfg(function.__code__))
        assert first.idom == second.idom
        assert first.loops == second.loops
        assert first.branch_classes == second.branch_classes
        assert first.nesting_depth == second.nesting_depth
