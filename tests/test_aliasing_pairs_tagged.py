"""Tests for conflict-pair attribution, the tagged table, and
calibration checks."""

import pytest

from repro.aliasing.pairs import (
    conflict_concentration,
    conflict_pairs,
    pair_report,
)
from repro.errors import TraceError
from repro.predictors import make_predictor_spec
from repro.predictors.tagged_table import TaggedTablePredictor
from repro.sim import simulate_reference
from repro.workloads import make_workload
from repro.workloads.calibration import CalibrationCheck, calibrate
from repro.workloads.micro import aliasing_pair_trace, biased_field_trace


class TestConflictPairs:
    def test_attributes_the_constructed_pair(self):
        trace = aliasing_pair_trace(200, stride_counters=16)
        spec = make_predictor_spec("bimodal", cols=16)
        pairs = conflict_pairs(spec, trace, top=5)
        pcs = {(p.intruder_pc, p.victim_pc) for p in pairs}
        assert (0x1000, 0x1000 + 64) in pcs
        assert (0x1000 + 64, 0x1000) in pcs

    def test_destructive_share_follows_directions(self):
        opposite = aliasing_pair_trace(200, opposite=True)
        agreeing = aliasing_pair_trace(200, opposite=False)
        spec = make_predictor_spec("bimodal", cols=16)
        worst = conflict_pairs(spec, opposite, top=1)[0]
        best = conflict_pairs(spec, agreeing, top=1)[0]
        assert worst.destructive_share == 1.0
        assert best.destructive_share == 0.0

    def test_no_conflicts_no_pairs(self):
        trace = biased_field_trace(4, 50)
        spec = make_predictor_spec("bimodal", cols=64)
        assert conflict_pairs(spec, trace) == []

    def test_empty_rejected(self):
        from repro.traces import BranchTrace

        with pytest.raises(TraceError):
            conflict_pairs(
                make_predictor_spec("bimodal", cols=16),
                BranchTrace.from_records([]),
            )

    def test_concentration(self):
        trace = aliasing_pair_trace(200, stride_counters=16)
        spec = make_predictor_spec("bimodal", cols=16)
        covering, total = conflict_concentration(spec, trace, share=0.5)
        assert 1 <= covering <= total == 2

    def test_concentration_empty(self):
        trace = biased_field_trace(4, 50)
        spec = make_predictor_spec("bimodal", cols=64)
        assert conflict_concentration(spec, trace) == (0, 0)

    def test_report_renders(self):
        trace = make_workload("real_gcc", length=10_000, seed=1)
        spec = make_predictor_spec("bimodal", cols=128)
        text = pair_report(spec, trace, top=5)
        assert "intruder" in text and "victim" in text


class TestTaggedTable:
    def test_removes_bimodal_conflict(self):
        """The constructed conflict pair thrashes a 16-entry direct
        table but fits comfortably in a 16-entry 4-way tagged table."""
        trace = aliasing_pair_trace(400, stride_counters=16)
        direct = simulate_reference(
            make_predictor_spec("bimodal", cols=16), trace
        )
        tagged = simulate_reference(
            TaggedTablePredictor(entries=16, assoc=4, history_bits=0),
            trace,
        )
        assert tagged.misprediction_rate < direct.misprediction_rate / 2

    def test_miss_rate_counts_allocations(self):
        trace = biased_field_trace(4, 50)
        predictor = TaggedTablePredictor(entries=16, assoc=4,
                                         history_bits=0)
        simulate_reference(predictor, trace)
        # Four compulsory allocations over 200 updates.
        assert predictor.miss_rate == pytest.approx(4 / 200)

    def test_capacity_still_evicts(self):
        trace = biased_field_trace(branches=64, executions_each=20, seed=3)
        predictor = TaggedTablePredictor(entries=8, assoc=4,
                                         history_bits=0)
        simulate_reference(predictor, trace)
        assert predictor.miss_rate > 0.5  # 64 branches through 8 entries

    def test_reset(self):
        predictor = TaggedTablePredictor(entries=8, assoc=2)
        predictor.update(0x100, True)
        predictor.reset()
        assert predictor.miss_rate == 0.0
        assert predictor.predict(0x100) is True  # back to init state

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TaggedTablePredictor(entries=8, assoc=3)

    def test_storage_accounts_tags(self):
        predictor = TaggedTablePredictor(entries=1024, assoc=4,
                                         history_bits=10)
        assert predictor.storage_bits == 1024 * 10 + 10


class TestCalibration:
    def test_all_benchmarks_pass_at_default_scale(self):
        # Smoke-level: two representative benchmarks (the full set runs
        # in CI via the CLI; see EXPERIMENTS.md).
        for name in ("espresso", "mpeg_play"):
            report = calibrate(name, length=60_000, seed=0)
            assert report.ok, report.render()

    def test_report_renders_failures(self):
        check = CalibrationCheck(
            name="x", target=10.0, realized=100.0, rel_tolerance=0.5
        )
        assert not check.ok
        assert check.ratio == 10.0

    def test_abs_slack_tolerates_small_targets(self):
        check = CalibrationCheck(
            name="x", target=1.0, realized=3.0, rel_tolerance=0.1,
            abs_slack=2.0,
        )
        assert check.ok

    def test_one_sided_allows_undershoot(self):
        check = CalibrationCheck(
            name="x", target=100.0, realized=10.0, rel_tolerance=0.2,
            one_sided=True,
        )
        assert check.ok
        overshoot = CalibrationCheck(
            name="x", target=100.0, realized=150.0, rel_tolerance=0.2,
            one_sided=True,
        )
        assert not overshoot.ok

    def test_accepts_existing_trace(self):
        trace = make_workload("espresso", length=30_000, seed=0)
        report = calibrate("espresso", trace=trace)
        assert report.length == 30_000

    def test_render_mentions_verdict(self):
        report = calibrate("espresso", length=30_000, seed=0)
        assert "calibration of espresso" in report.render()
