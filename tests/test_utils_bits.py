"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_select,
    extract_field,
    fold_xor,
    is_power_of_two,
    log2_exact,
    mask,
    reverse_bits,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=63))
    def test_width_matches_bit_length(self, width):
        assert mask(width).bit_length() == width


class TestExtractField:
    def test_low_bits(self):
        assert extract_field(0b101101, 0, 3) == 0b101

    def test_middle_bits(self):
        assert extract_field(0b101101, 2, 3) == 0b011

    def test_zero_width_field(self):
        assert extract_field(0xFFFF, 4, 0) == 0

    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            extract_field(1, -1, 3)

    def test_numpy_array_input(self):
        values = np.array([0b1100, 0b0110], dtype=np.uint64)
        out = extract_field(values, 1, 2)
        assert list(out) == [0b10, 0b11]

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=16),
        st.integers(min_value=0, max_value=16),
    )
    def test_matches_string_slicing(self, value, low, nbits):
        expected = (value >> low) & ((1 << nbits) - 1)
        assert extract_field(value, low, nbits) == expected


class TestBitSelect:
    def test_selects_individual_bits(self):
        assert bit_select(0b100, 2) == 1
        assert bit_select(0b100, 1) == 0

    @given(st.integers(min_value=0, max_value=2**20), st.integers(0, 20))
    def test_is_zero_or_one(self, value, bit):
        assert bit_select(value, bit) in (0, 1)


class TestFoldXor:
    def test_identity_when_narrow_enough(self):
        assert fold_xor(0b1011, 4, 4) == 0b1011

    def test_folds_high_bits(self):
        # 8 bits folded to 4: high nibble XOR low nibble.
        assert fold_xor(0xAB, 8, 4) == (0xA ^ 0xB)

    def test_three_way_fold(self):
        value = 0b1010_1100_0110
        expected = 0b0110 ^ 0b1100 ^ 0b1010
        assert fold_xor(value, 12, 4) == expected

    def test_rejects_zero_target(self):
        with pytest.raises(ValueError):
            fold_xor(1, 8, 0)

    @given(st.integers(min_value=0, max_value=2**30 - 1))
    def test_result_fits_target_width(self, value):
        assert fold_xor(value, 30, 7) <= mask(7)

    @given(
        st.integers(min_value=0, max_value=2**24 - 1),
        st.integers(min_value=0, max_value=2**24 - 1),
    )
    def test_linearity_under_xor(self, a, b):
        # XOR-folding is linear over GF(2).
        assert fold_xor(a, 24, 6) ^ fold_xor(b, 24, 6) == fold_xor(a ^ b, 24, 6)


class TestPowersOfTwo:
    def test_is_power_of_two_basics(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(32768) == 15

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    @given(st.integers(min_value=0, max_value=40))
    def test_log2_roundtrip(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestReverseBits:
    def test_small_example(self):
        assert reverse_bits(0b0011, 4) == 0b1100

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value
