"""Tests for the first-level branch-history table and reset pattern."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.predictors.bht import (
    RESET_PATTERN,
    BranchHistoryTable,
    PerfectHistoryTable,
    reset_history,
)


class TestResetHistory:
    def test_full_pattern(self):
        assert reset_history(16) == RESET_PATTERN

    def test_prefix_is_high_bits(self):
        # 0xC3FF = 1100001111111111; 4-bit prefix = 1100.
        assert reset_history(4) == 0b1100
        assert reset_history(10) == 0b1100001111

    def test_mixes_zeros_and_ones(self):
        # The pattern exists to avoid all-taken / all-not-taken rows.
        for bits in range(3, 16):
            value = reset_history(bits)
            assert value != 0
            assert value != (1 << bits) - 1

    def test_extends_beyond_sixteen_bits(self):
        value = reset_history(20)
        assert value >> 4 == RESET_PATTERN

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            reset_history(0)


class TestBranchHistoryTable:
    def test_miss_then_hit(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        history, hit = table.lookup(0x100)
        assert not hit
        assert history == reset_history(4)
        _, hit = table.lookup(0x100)
        assert hit

    def test_record_shifts_history(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        table.lookup(0x100)
        table.record(0x100, True)
        history, hit = table.lookup(0x100)
        assert hit
        assert history == ((reset_history(4) << 1) | 1) & 0xF

    def test_record_without_lookup_rejected(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        with pytest.raises(ConfigurationError):
            table.record(0x100, True)

    def test_lru_eviction(self):
        # 2 sets x 2 ways; pcs 0x100, 0x120, 0x140 share set 0
        # (word index mod 2 == 0).
        table = BranchHistoryTable(entries=4, assoc=2, history_bits=4)
        table.lookup(0x100)
        table.lookup(0x120)
        table.lookup(0x100)  # refresh 0x100 -> 0x120 becomes LRU
        table.lookup(0x140)  # evicts 0x120
        _, hit = table.lookup(0x100)
        assert hit
        _, hit = table.lookup(0x120)
        assert not hit  # was evicted

    def test_conflict_resets_history(self):
        table = BranchHistoryTable(entries=2, assoc=1, history_bits=4)
        table.lookup(0x100)
        table.record(0x100, True)
        table.lookup(0x110)  # same set (direct mapped, 2 sets), evicts
        history, hit = table.lookup(0x100)
        assert not hit
        assert history == reset_history(4)

    def test_miss_rate_counts_each_access_once(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        table.lookup(0x100)  # miss
        table.lookup(0x100)  # hit
        table.lookup(0x100)  # hit
        assert table.accesses == 3
        assert table.miss_rate == pytest.approx(1 / 3)

    def test_miss_rate_empty(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        assert table.miss_rate == 0.0

    def test_reset_clears_everything(self):
        table = BranchHistoryTable(entries=8, assoc=2, history_bits=4)
        table.lookup(0x100)
        table.reset()
        assert table.accesses == 0
        _, hit = table.lookup(0x100)
        assert not hit

    def test_storage_bits_excludes_tags(self):
        table = BranchHistoryTable(entries=1024, assoc=4, history_bits=10)
        assert table.storage_bits == 10240

    @pytest.mark.parametrize(
        "entries,assoc",
        [(0, 1), (7, 1), (4, 8), (8, 3)],
    )
    def test_bad_geometry_rejected(self, entries, assoc):
        with pytest.raises(ConfigurationError):
            BranchHistoryTable(entries=entries, assoc=assoc, history_bits=4)

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=30)
    def test_fully_associative_never_conflicts_within_capacity(self, pcs):
        """With distinct PCs <= capacity, only compulsory misses occur."""
        table = BranchHistoryTable(entries=16, assoc=16, history_bits=4)
        distinct = []
        for pc_index in pcs:
            pc = 0x1000 + pc_index * 4
            if pc not in distinct:
                distinct.append(pc)
            if len(distinct) > 16:
                break
            table.lookup(pc)
        assert table.misses == len(distinct[:16]) or not pcs


class TestPerfectHistoryTable:
    def test_never_misses(self):
        table = PerfectHistoryTable(history_bits=6)
        for pc in (0x100, 0x104, 0x100):
            _, hit = table.lookup(pc)
            assert hit
        assert table.miss_rate == 0.0

    def test_histories_are_per_branch(self):
        table = PerfectHistoryTable(history_bits=4)
        table.record(0x100, True)
        table.record(0x200, False)
        h1, _ = table.lookup(0x100)
        h2, _ = table.lookup(0x200)
        assert h1 != h2

    def test_initial_history_is_reset_pattern(self):
        table = PerfectHistoryTable(history_bits=8)
        history, _ = table.lookup(0xABC)
        assert history == reset_history(8)

    def test_reset(self):
        table = PerfectHistoryTable(history_bits=4)
        table.record(0x100, True)
        table.reset()
        history, _ = table.lookup(0x100)
        assert history == reset_history(4)
