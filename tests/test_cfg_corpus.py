"""Real-program workloads end-to-end: registry, store, simulation."""

import pytest

from repro.cfg.corpus import (
    REAL_WORKLOADS,
    get_real_workload,
    is_real_workload,
    list_real_workloads,
    make_real_workload,
)
from repro.errors import AnalysisError
from repro.predictors.factory import make_predictor_spec
from repro.sim.engine import simulate
from repro.workloads.registry import (
    clear_cache,
    list_workloads,
    make_workload,
)
from repro.workloads.store import TraceStore


class TestRegistry:
    def test_real_names_listed_after_synthetic(self):
        names = list_workloads()
        for name in list_real_workloads():
            assert name in names
        assert "espresso" in names

    def test_real_gcc_is_synthetic_not_real(self):
        # The calibrated profile named "real_gcc" predates the measured
        # corpus; membership, not the name prefix, decides dispatch.
        assert not is_real_workload("real_gcc")
        assert is_real_workload("real_quicksort")

    def test_unknown_real_workload_raises(self):
        with pytest.raises(AnalysisError) as excinfo:
            get_real_workload("real_nonesuch")
        assert "real_quicksort" in str(excinfo.value)

    def test_negative_length_rejected(self):
        with pytest.raises(AnalysisError):
            make_real_workload("real_quicksort", length=-1)

    def test_registry_entries_are_complete(self):
        for name, workload in REAL_WORKLOADS.items():
            assert workload.name == name
            assert workload.title
            assert workload.default_length > 0
            assert workload.entry in workload.instrument or callable(
                workload.entry
            )


class TestEndToEnd:
    @pytest.mark.parametrize(
        "name", ["real_quicksort", "real_binsearch", "real_collatz"]
    )
    def test_make_workload_hits_requested_length(self, name):
        trace = make_workload(name, length=4000, seed=1, cache=False)
        assert len(trace) == 4000
        assert trace.name == name
        assert trace.num_static_branches >= 2

    def test_deterministic_per_seed(self):
        first = make_workload(
            "real_wordcount", length=3000, seed=5, cache=False
        )
        second = make_workload(
            "real_wordcount", length=3000, seed=5, cache=False
        )
        third = make_workload(
            "real_wordcount", length=3000, seed=6, cache=False
        )
        assert (first.pc == second.pc).all()
        assert (first.taken == second.taken).all()
        assert not (first.taken == third.taken).all()

    def test_cache_round_trip(self):
        clear_cache()
        first = make_workload("real_collatz", length=2000, seed=0)
        second = make_workload("real_collatz", length=2000, seed=0)
        assert first is second
        clear_cache()

    def test_zero_length_means_one_unit_call(self):
        trace = make_real_workload("real_collatz", length=0, seed=0)
        assert len(trace) > 0

    def test_traces_land_in_the_store(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = store.get("real_quicksort", 2500, 4)
        assert len(trace) == 2500
        assert store.contains("real_quicksort", 2500, 4)
        again = store.get("real_quicksort", 2500, 4)
        assert (again.pc == trace.pc).all()
        assert (again.taken == trace.taken).all()

    @pytest.mark.parametrize(
        "scheme,geometry",
        [("gshare", {"rows": 64, "cols": 4}), ("bimodal", {"cols": 256})],
    )
    def test_real_traces_simulate(self, scheme, geometry):
        trace = make_workload("real_quicksort", length=6000, seed=1)
        spec = make_predictor_spec(scheme, **geometry)
        result = simulate(spec, trace)
        assert 0.0 < result.misprediction_rate < 0.5

    def test_two_level_beats_bimodal_on_correlated_kernel(self):
        # The wordcount boundary branch carries strong history
        # correlation; a global-history scheme must exploit it.
        trace = make_workload("real_wordcount", length=12_000, seed=2)
        bimodal = simulate(
            make_predictor_spec("bimodal", cols=256), trace
        )
        gshare = simulate(
            make_predictor_spec("gshare", rows=64, cols=4), trace
        )
        assert (
            gshare.misprediction_rate < bimodal.misprediction_rate
        )
