"""The symbolic index-expression IR: algebra, evaluation, and the
bit-exact agreement of every scheme's symbolic index function with the
concrete decoded ``index_stream``.

The agreement tests are the foundation the batch planner stands on: if
``evaluate(symbolic_index(spec), tier_environment(...))`` ever diverges
from ``index_stream(spec, trace)``, the planner's sharing and stacking
proofs are about the wrong functions.
"""

import numpy as np
import pytest

from repro.check.symbolic import (
    Bits,
    Cat,
    Const,
    Sym,
    Xor,
    equivalent,
    evaluate,
    expr_width,
    free_symbols,
    from_dict,
    normal_form,
    render,
    symbol_extent,
    symbolic_index,
    to_dict,
)
from repro.sim.sweep import spec_for_point
from repro.sim.vectorized import index_stream, tier_environment
from repro.workloads.micro import (
    alternating_trace,
    correlated_pair_trace,
    interference_field_trace,
    loop_trace,
)

WORD = Sym("word")
GHIST = Sym("ghist")


class TestAlgebra:
    def test_xor_commutes(self):
        a = Bits(WORD, 0, 4)
        b = Bits(GHIST, 0, 4)
        assert equivalent(Xor((a, b)), Xor((b, a)))

    def test_xor_with_zero_is_identity(self):
        a = Bits(WORD, 0, 4)
        assert equivalent(Xor((a, Const(0))), a)

    def test_xor_self_cancels(self):
        a = Bits(GHIST, 0, 3)
        zero3 = Bits(Const(0), 0, 3)  # equivalence is width-sensitive
        assert equivalent(Xor((a, a)), zero3)

    def test_cat_of_adjacent_slices_is_the_slice(self):
        whole = Bits(WORD, 0, 4)
        parts = Cat(((Bits(WORD, 0, 2), 2), (Bits(WORD, 2, 2), 2)))
        assert equivalent(parts, whole)

    def test_lag_distinguishes(self):
        now = Bits(Sym("tgt"), 0, 4)
        then = Bits(Sym("tgt", lag=1), 0, 4)
        assert not equivalent(now, then)

    def test_param_distinguishes(self):
        a = Bits(Sym("lhist", param="b4"), 0, 4)
        b = Bits(Sym("lhist", param="b6"), 0, 4)
        assert not equivalent(a, b)

    def test_normal_form_is_canonical(self):
        a = Bits(WORD, 0, 2)
        b = Bits(GHIST, 0, 2)
        assert normal_form(Xor((a, b))) == normal_form(Xor((b, a)))

    def test_widths(self):
        assert expr_width(Const(0)) == 1
        assert expr_width(Bits(WORD, 3, 5)) == 5
        assert expr_width(Cat(((Bits(WORD, 0, 2), 2), (Bits(GHIST, 0, 3), 3)))) == 5
        assert expr_width(Xor((Bits(WORD, 0, 2), Bits(GHIST, 0, 4)))) == 4
        assert expr_width(WORD) is None

    def test_free_symbols_and_extent(self):
        expr = Cat(((Bits(GHIST, 0, 3), 3), (Bits(WORD, 1, 2), 2)))
        assert free_symbols(expr) == {("ghist", ""), ("word", "")}
        assert symbol_extent(expr) == {("ghist", "", 0): 3, ("word", "", 0): 3}


class TestEvaluate:
    ENV = {
        ("word", ""): np.array([0b1011, 0b0110, 0b1111], dtype=np.int64),
        ("ghist", ""): np.array([0b01, 0b10, 0b11], dtype=np.int64),
        ("tgt", ""): np.array([5, 9, 13], dtype=np.int64),
    }

    def test_bits_masks_and_shifts(self):
        out = evaluate(Bits(WORD, 1, 2), self.ENV)
        assert out.tolist() == [0b01, 0b11, 0b11]

    def test_xor(self):
        out = evaluate(Xor((Bits(WORD, 0, 2), Bits(GHIST, 0, 2))), self.ENV)
        assert out.tolist() == [0b10, 0b00, 0b00]

    def test_cat_packs_first_field_low(self):
        expr = Cat(((Bits(WORD, 0, 2), 2), (Bits(GHIST, 0, 2), 2)))
        out = evaluate(expr, self.ENV)
        assert out.tolist() == [
            0b11 | (0b01 << 2),
            0b10 | (0b10 << 2),
            0b11 | (0b11 << 2),
        ]

    def test_lag_shifts_with_zero_fill(self):
        out = evaluate(Bits(Sym("tgt", lag=1), 0, 4), self.ENV)
        assert out.tolist() == [0, 5, 9]

    def test_const_evaluates_to_broadcastable_scalar(self):
        out = evaluate(Const(3), self.ENV)
        assert np.asarray(out).max() == 3 and np.asarray(out).min() == 3


class TestSerialization:
    EXPRS = [
        Const(0),
        Bits(WORD, 0, 6),
        Xor((Bits(GHIST, 0, 4), Bits(WORD, 2, 4))),
        Cat(((Bits(Sym("tgt", lag=2), 0, 3), 3), (Bits(WORD, 0, 2), 2))),
        Bits(Sym("lhist", param="b5/bht64x4"), 0, 5),
    ]

    @pytest.mark.parametrize("expr", EXPRS, ids=render)
    def test_roundtrip(self, expr):
        back = from_dict(to_dict(expr))
        assert back == expr
        assert equivalent(back, expr)

    def test_render_reads_like_the_paper(self):
        expr = Xor((Bits(GHIST, 0, 4), Bits(WORD, 2, 4)))
        text = render(expr)
        assert "ghist" in text and "word" in text and "xor" in text


MICROS = {
    "loop": lambda: loop_trace(trips=7, repeats=48),
    "alternating": lambda: alternating_trace(384),
    "correlated-pair": lambda: correlated_pair_trace(512, noise=0.1, seed=3),
    "interference-field": lambda: interference_field_trace(
        branches=8, length=1536, seed=1
    ),
}

SCHEMES = ["gas", "gshare", "path", "pas"]


class TestSymbolicMatchesConcrete:
    """The load-bearing theorem: symbolic == concrete, bit for bit,
    for every split of a tier, on every verification micro."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("micro", sorted(MICROS), ids=str)
    def test_every_split_agrees(self, scheme, micro):
        trace = MICROS[micro]()
        n = 5
        for row_bits in range(n + 1):
            spec = spec_for_point(
                scheme, col_bits=n - row_bits, row_bits=row_bits
            )
            expr = symbolic_index(spec)
            env = tier_environment([spec], trace)
            symbolic = evaluate(expr, env)
            concrete = np.asarray(index_stream(spec, trace), dtype=np.int64)
            assert np.array_equal(symbolic, concrete), (
                f"{scheme} {spec.size_label} diverges on {micro}"
            )

    def test_pas_with_bht_agrees(self):
        trace = MICROS["interference-field"]()
        spec = spec_for_point(
            "pas", col_bits=2, row_bits=3, bht_entries=64, bht_assoc=4
        )
        expr = symbolic_index(spec)
        symbolic = evaluate(expr, tier_environment([spec], trace))
        concrete = np.asarray(index_stream(spec, trace), dtype=np.int64)
        assert np.array_equal(symbolic, concrete)
