"""Tests for export, convergence, and trace interleaving."""

import csv
import io
import json

import numpy as np
import pytest

from repro.analysis import (
    convergence_report,
    diff_grid_to_csv,
    series_to_csv,
    steady_state_rate,
    surface_to_csv,
    surface_to_json,
    surface_to_rows,
    windowed_rates,
)
from repro.analysis.compare import DiffGrid
from repro.errors import ConfigurationError, TraceError
from repro.predictors import make_predictor_spec
from repro.sim.results import SimulationResult, TierPoint, TierSurface
from repro.traces import BranchTrace, interleave_traces


def make_surface():
    surface = TierSurface(scheme="gas", trace_name="t")
    for n in (4, 5):
        for row_bits in range(n + 1):
            surface.add(
                n,
                TierPoint(
                    col_bits=n - row_bits,
                    row_bits=row_bits,
                    misprediction_rate=0.1 + 0.01 * row_bits,
                ),
            )
    return surface


def make_result(wrong_head=True):
    # 100 accesses; first 20 all wrong, rest all right (a training
    # transient caricature).
    predictions = np.ones(100, dtype=bool)
    taken = np.ones(100, dtype=bool)
    if wrong_head:
        taken[:20] = False
    return SimulationResult(
        spec=make_predictor_spec("bimodal", cols=4),
        trace_name="t",
        predictions=predictions,
        taken=taken,
    )


class TestSurfaceExport:
    def test_rows_cover_all_points(self):
        rows = surface_to_rows(make_surface())
        assert len(rows) == 5 + 6
        assert sum(r["is_best_in_tier"] for r in rows) == 2

    def test_csv_parses_back(self):
        text = surface_to_csv(make_surface())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 11
        assert parsed[0]["scheme"] == "gas"

    def test_json_parses_back(self):
        data = json.loads(surface_to_json(make_surface()))
        assert data[0]["trace"] == "t"
        assert {row["size_bits"] for row in data} == {4, 5}


class TestSeriesExport:
    def test_series_rows(self):
        text = series_to_csv({"espresso": [0.1, 0.2]}, ["2^4", "2^5"])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["name", "x", "rate"]
        assert len(parsed) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({"x": [0.1]}, ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({}, [])


class TestDiffExport:
    def test_diff_rows_sorted(self):
        grid = DiffGrid(
            base_scheme="gas", other_scheme="gshare", trace_name="t",
            cells={(5, 1): 0.4, (4, 0): -0.2},
        )
        parsed = list(csv.reader(io.StringIO(diff_grid_to_csv(grid))))
        assert parsed[1][3:5] == ["4", "0"]
        assert parsed[2][3:5] == ["5", "1"]


class TestConvergence:
    def test_windowed_rates_show_transient(self):
        rates = windowed_rates(make_result(), windows=5)
        assert rates[0] == 1.0
        assert rates[-1] == 0.0

    def test_windows_validated(self):
        with pytest.raises(ConfigurationError):
            windowed_rates(make_result(), windows=0)
        with pytest.raises(ConfigurationError):
            windowed_rates(make_result(), windows=1000)

    def test_steady_state_discards_head(self):
        estimate = steady_state_rate(make_result(), head_fraction=0.2)
        assert estimate.rate == 0.0
        assert estimate.head_rate == 1.0
        assert estimate.training_transient == 1.0
        assert estimate.tail_accesses == 80

    def test_steady_state_error_positive_when_noisy(self):
        result = make_result(wrong_head=False)
        result.taken[::3] = False  # 1/3 of everything wrong
        estimate = steady_state_rate(result)
        assert estimate.standard_error > 0

    def test_head_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            steady_state_rate(make_result(), head_fraction=0.0)

    def test_report_renders(self):
        text = convergence_report(make_result(), windows=4)
        assert "steady-state" in text
        assert "training transient" in text


class TestInterleave:
    def make(self, base, n, name):
        return BranchTrace.from_records(
            [(base + 4 * i, True) for i in range(n)], name=name
        )

    def test_round_robin_order(self):
        a = self.make(0x1000, 4, "a")
        b = self.make(0x2000, 4, "b")
        merged = interleave_traces([a, b], quantum=2)
        assert len(merged) == 8
        # First quantum of a, then of b, then the remainders.
        assert int(merged.pc[0]) == 0x1000
        assert int(merged.pc[2]) == 0x2000
        assert int(merged.pc[4]) == 0x1008

    def test_uneven_lengths(self):
        a = self.make(0x1000, 5, "a")
        b = self.make(0x2000, 2, "b")
        merged = interleave_traces([a, b], quantum=2)
        assert len(merged) == 7
        # b runs dry; a's tail continues alone.
        assert int(merged.pc[-1]) == 0x1000 + 4 * 4

    def test_validation(self):
        with pytest.raises(TraceError):
            interleave_traces([], quantum=4)
        with pytest.raises(TraceError):
            interleave_traces([self.make(0x1000, 2, "a")], quantum=0)

    def test_multiprogramming_hurts_prediction(self):
        """Context switches between working sets must cost accuracy
        versus running the same programs back to back."""
        from repro.sim import simulate
        from repro.workloads import make_workload

        a = make_workload("groff", length=15_000, seed=1)
        b = make_workload("verilog", length=15_000, seed=2)
        spec = make_predictor_spec("bimodal", cols=512)
        switched = simulate(spec, interleave_traces([a, b], quantum=200))
        sequential = simulate(spec, a.concat(b))
        assert (
            switched.misprediction_rate
            > sequential.misprediction_rate - 0.002
        )
